(** Components: a weight array applied to a named grid (paper Table I).

    [to_expr ~grid w] denotes, at point [x], the gather
    [Σ_o shift_o(w_o) · grid(x + o)] over the support of [w].  Shifting the
    weight expression by the entry's own offset is what makes nested
    components express variable-coefficient operators: the coefficient is
    read at the neighbour the term belongs to. *)

val to_expr : grid:string -> Weights.t -> Expr.t

val point : string -> Expr.t
(** [point g] reads grid [g] at the stencil centre —
    [Component(g, WeightArray([[1]]))] in the paper's notation, in any
    dimension (the offset rank is fixed on first use via {!Expr.dims}; here
    we default to reading with a rank inferred from context).  For explicit
    rank use [point_n]. *)

val point_n : int -> string -> Expr.t
(** [point_n n g] reads grid [g] at offset zero in [n] dimensions. *)
