(** Stencil weight arrays.

    The paper exposes two surface syntaxes for the same object: a
    [WeightArray] (an N-deep nested array whose middle element is the stencil
    centre) and a [SparseArray] (a map from offset vectors to weights).  Both
    normalise to the sparse form used everywhere else in the system.  Weights
    are full expressions, so nested components (variable-coefficient
    stencils) are supported. *)

open Sf_util

(** Nested surface syntax.  [W w] is a constant weight, [E e] an expression
    weight, [A xs] one nesting level. *)
type nested = W of float | E of Expr.t | A of nested list

type t
(** A canonical sparse weight array: zero weights dropped, offsets sorted. *)

val of_nested : nested -> t
(** Interprets an N-deep nested array.  All siblings at each level must have
    equal shape (raises [Invalid_argument] otherwise); the centre index on an
    axis of extent [e] is [e / 2], matching the paper's "middle element"
    convention for odd extents.  [of_nested (W w)] is a 0-offset scalar only
    when wrapped in at least one [A]; a bare leaf is rejected. *)

val of_nested_center : center:Ivec.t -> nested -> t
(** As {!of_nested} with an explicit centre index. *)

val of_alist : (int list * Expr.t) list -> t
(** The paper's [SparseArray]: explicit offset/weight pairs.  Duplicate
    offsets are summed. *)

val scalar : float -> int -> t
(** [scalar w n] is the [n]-dimensional single-point weight [w] at offset
    0 — e.g. [WeightArray([[1]])] in 2-D is [scalar 1. 2]. *)

val entries : t -> (Ivec.t * Expr.t) list
(** Sorted by offset; no zero constant weights. *)

val support : t -> Ivec.t list
val dims : t -> int
val npoints : t -> int
val find : t -> Ivec.t -> Expr.t option

val add : t -> t -> t
(** Pointwise sum of two weight arrays of equal rank. *)

val radius : t -> int
(** Maximum L∞ norm over the support (0 for an empty array). *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
