open Sf_util

type nested = W of float | E of Expr.t | A of nested list

module OffsetMap = Map.Make (struct
  type t = Ivec.t

  let compare = Ivec.compare
end)

type t = { rank : int; entries : Expr.t OffsetMap.t }

let is_zero_expr = function Expr.Const 0. -> true | _ -> false

let normalize rank entries =
  let entries =
    OffsetMap.filter_map
      (fun _ e ->
        let e = Expr.simplify e in
        if is_zero_expr e then None else Some e)
      entries
  in
  { rank; entries }

(* Shape inference for the nested syntax: every sibling list must have the
   same shape, and leaves must all sit at the same depth. *)
let rec nested_shape = function
  | W _ | E _ -> []
  | A [] -> invalid_arg "Weights.of_nested: empty nesting level"
  | A (x :: xs) ->
      let s = nested_shape x in
      List.iter
        (fun y ->
          if nested_shape y <> s then
            invalid_arg "Weights.of_nested: ragged weight array")
        xs;
      (1 + List.length xs) :: s

let of_nested_center ~center nested =
  let shape = nested_shape nested in
  let rank = List.length shape in
  if rank = 0 then
    invalid_arg "Weights.of_nested: bare leaf (wrap it in at least one A [...])";
  if Ivec.dims center <> rank then
    invalid_arg "Weights.of_nested_center: center rank mismatch";
  let entries = ref OffsetMap.empty in
  let offset_of idx_rev =
    Ivec.sub (Array.of_list (List.rev idx_rev)) center
  in
  let rec walk idx_rev = function
    | W w -> entries := OffsetMap.add (offset_of idx_rev) (Expr.Const w) !entries
    | E e -> entries := OffsetMap.add (offset_of idx_rev) e !entries
    | A xs -> List.iteri (fun i x -> walk (i :: idx_rev) x) xs
  in
  walk [] nested;
  normalize rank !entries

let of_nested nested =
  let shape = nested_shape nested in
  let center = Array.of_list (List.map (fun e -> e / 2) shape) in
  of_nested_center ~center nested

let of_alist alist =
  match alist with
  | [] -> invalid_arg "Weights.of_alist: empty sparse array"
  | (o0, _) :: _ ->
      let rank = List.length o0 in
      let entries =
        List.fold_left
          (fun acc (o, e) ->
            if List.length o <> rank then
              invalid_arg "Weights.of_alist: offsets of differing rank";
            let o = Ivec.of_list o in
            match OffsetMap.find_opt o acc with
            | None -> OffsetMap.add o e acc
            | Some prev -> OffsetMap.add o Expr.(prev +: e) acc)
          OffsetMap.empty alist
      in
      normalize rank entries

let scalar w n =
  { rank = n; entries = OffsetMap.singleton (Ivec.zero n) (Expr.Const w) }
  |> fun t -> normalize t.rank t.entries

let entries t = OffsetMap.bindings t.entries
let support t = List.map fst (entries t)
let dims t = t.rank
let npoints t = OffsetMap.cardinal t.entries
let find t o = OffsetMap.find_opt o t.entries

let add a b =
  if a.rank <> b.rank then invalid_arg "Weights.add: rank mismatch";
  let entries =
    OffsetMap.union (fun _ x y -> Some Expr.(x +: y)) a.entries b.entries
  in
  normalize a.rank entries

let radius t =
  List.fold_left (fun acc o -> max acc (Ivec.linf_norm o)) 0 (support t)

let equal a b =
  a.rank = b.rank && OffsetMap.equal Expr.equal a.entries b.entries

let hash t =
  Hashc.combine (Hashc.int t.rank)
    (Hashc.list (Hashc.pair Ivec.hash Expr.hash) (entries t))

let pp ppf t =
  Format.fprintf ppf "{";
  List.iteri
    (fun i (o, e) ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%a: %a" Ivec.pp o Expr.pp e)
    (entries t);
  Format.fprintf ppf "}"
