open Sf_util

let ( let* ) = Result.bind

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

let ivec_to_sexps v = List.map Sexp.int (Ivec.to_list v)

let ivec_of_sexps sexps =
  let* ints = collect Sexp.as_int sexps in
  match ints with
  | [] -> Error "expected at least one integer"
  | _ -> Ok (Ivec.of_list ints)

let map_to_sexp (m : Affine.t) =
  Sexp.list
    [
      Sexp.list (Sexp.atom "scale" :: ivec_to_sexps m.Affine.scale);
      Sexp.list (Sexp.atom "offset" :: ivec_to_sexps m.Affine.offset);
    ]

let map_of_sexp = function
  | Sexp.List
      [
        Sexp.List (Sexp.Atom "scale" :: scale);
        Sexp.List (Sexp.Atom "offset" :: offset);
      ] ->
      let* scale = ivec_of_sexps scale in
      let* offset = ivec_of_sexps offset in
      if Ivec.dims scale <> Ivec.dims offset then
        Error "map: scale and offset rank differ"
      else Ok (Affine.make ~scale ~offset)
  | s -> Error ("malformed affine map: " ^ Sexp.to_string s)

(* ---------------------------------------------------------------- expr *)

let rec expr_to_sexp = function
  | Expr.Const c -> Sexp.list [ Sexp.atom "const"; Sexp.float c ]
  | Expr.Param p -> Sexp.list [ Sexp.atom "param"; Sexp.atom p ]
  | Expr.Read (g, m) ->
      if Affine.is_unit_scale m then
        Sexp.list
          [
            Sexp.atom "read";
            Sexp.atom g;
            Sexp.list (ivec_to_sexps m.Affine.offset);
          ]
      else Sexp.list [ Sexp.atom "read*"; Sexp.atom g; map_to_sexp m ]
  | Expr.Neg e -> Sexp.list [ Sexp.atom "neg"; expr_to_sexp e ]
  | Expr.Add (a, b) ->
      Sexp.list [ Sexp.atom "+"; expr_to_sexp a; expr_to_sexp b ]
  | Expr.Sub (a, b) ->
      Sexp.list [ Sexp.atom "-"; expr_to_sexp a; expr_to_sexp b ]
  | Expr.Mul (a, b) ->
      Sexp.list [ Sexp.atom "*"; expr_to_sexp a; expr_to_sexp b ]
  | Expr.Div (a, b) ->
      Sexp.list [ Sexp.atom "/"; expr_to_sexp a; expr_to_sexp b ]

let rec expr_of_sexp sexp =
  match sexp with
  | Sexp.List (Sexp.Atom "const" :: [ v ]) ->
      let* c = Sexp.as_float v in
      Ok (Expr.Const c)
  | Sexp.List [ Sexp.Atom "param"; Sexp.Atom p ] -> Ok (Expr.Param p)
  | Sexp.List [ Sexp.Atom "read"; Sexp.Atom g; Sexp.List offset ] ->
      let* offset = ivec_of_sexps offset in
      Ok (Expr.read g offset)
  | Sexp.List [ Sexp.Atom "read*"; Sexp.Atom g; m ] ->
      let* m = map_of_sexp m in
      Ok (Expr.read_affine g m)
  | Sexp.List [ Sexp.Atom "neg"; e ] ->
      let* e = expr_of_sexp e in
      Ok (Expr.Neg e)
  | Sexp.List (Sexp.Atom (("+" | "-" | "*" | "/") as op) :: (_ :: _ :: _ as args))
    ->
      let* args = collect expr_of_sexp args in
      let combine a b =
        match op with
        | "+" -> Expr.Add (a, b)
        | "-" -> Expr.Sub (a, b)
        | "*" -> Expr.Mul (a, b)
        | _ -> Expr.Div (a, b)
      in
      (match (op, args) with
      | ("-" | "/"), [ a; b ] -> Ok (combine a b)
      | ("-" | "/"), _ -> Error (op ^ " takes exactly two operands")
      | _, a :: rest -> Ok (List.fold_left combine a rest)
      | _, [] -> assert false)
  | s -> Error ("malformed expression: " ^ Sexp.to_string s)

(* -------------------------------------------------------------- domain *)

let rect_to_sexp (r : Domain.rect) =
  let base =
    [
      Sexp.atom "rect";
      Sexp.list (Sexp.atom "lo" :: ivec_to_sexps r.Domain.lo);
      Sexp.list (Sexp.atom "hi" :: ivec_to_sexps r.Domain.hi);
    ]
  in
  let stride =
    if Array.for_all (fun s -> s = 1) r.Domain.stride then []
    else [ Sexp.list (Sexp.atom "stride" :: ivec_to_sexps r.Domain.stride) ]
  in
  Sexp.list (base @ stride)

let rect_of_sexp = function
  | Sexp.List
      (Sexp.Atom "rect"
      :: Sexp.List (Sexp.Atom "lo" :: lo)
      :: Sexp.List (Sexp.Atom "hi" :: hi)
      :: rest) ->
      let* lo = ivec_of_sexps lo in
      let* hi = ivec_of_sexps hi in
      let* stride =
        match rest with
        | [] -> Ok None
        | [ Sexp.List (Sexp.Atom "stride" :: stride) ] ->
            let* s = ivec_of_sexps stride in
            Ok (Some (Ivec.to_list s))
        | _ -> Error "rect: unexpected trailing fields"
      in
      (try
         Ok
           (Domain.rect ?stride ~lo:(Ivec.to_list lo) ~hi:(Ivec.to_list hi) ())
       with Invalid_argument msg -> Error msg)
  | s -> Error ("malformed rect: " ^ Sexp.to_string s)

let domain_to_sexp d = List.map rect_to_sexp d
let domain_of_sexps sexps = collect rect_of_sexp sexps

(* ------------------------------------------------------------- stencil *)

let stencil_to_sexp (s : Stencil.t) =
  let fields =
    [ Sexp.list [ Sexp.atom "output"; Sexp.atom s.Stencil.output ] ]
    @ (if Affine.is_identity s.Stencil.out_map then []
       else [ Sexp.list [ Sexp.atom "out-map"; map_to_sexp s.Stencil.out_map ] ])
    @ [
        Sexp.list (Sexp.atom "domain" :: domain_to_sexp s.Stencil.domain);
        Sexp.list [ Sexp.atom "expr"; expr_to_sexp s.Stencil.expr ];
      ]
  in
  Sexp.list (Sexp.atom "stencil" :: Sexp.atom s.Stencil.label :: fields)

let stencil_of_sexp = function
  | Sexp.List (Sexp.Atom "stencil" :: Sexp.Atom label :: fields) ->
      let find name =
        List.find_map
          (function
            | Sexp.List (Sexp.Atom a :: rest) when a = name -> Some rest
            | _ -> None)
          fields
      in
      let* output =
        match find "output" with
        | Some [ Sexp.Atom g ] -> Ok g
        | _ -> Error (label ^ ": missing or malformed (output GRID)")
      in
      let* out_map =
        match find "out-map" with
        | None -> Ok None
        | Some [ m ] ->
            let* m = map_of_sexp m in
            Ok (Some m)
        | Some _ -> Error (label ^ ": malformed out-map")
      in
      let* domain =
        match find "domain" with
        | Some rects when rects <> [] -> domain_of_sexps rects
        | _ -> Error (label ^ ": missing (domain rect...)")
      in
      let* expr =
        match find "expr" with
        | Some [ e ] -> expr_of_sexp e
        | _ -> Error (label ^ ": missing (expr e)")
      in
      (try Ok (Stencil.make ~label ?out_map ~output ~expr ~domain ())
       with Invalid_argument msg -> Error msg)
  | s -> Error ("malformed stencil: " ^ Sexp.to_string s)

(* --------------------------------------------------------------- group *)

let group_to_sexp (g : Group.t) =
  Sexp.list
    (Sexp.atom "group"
    :: Sexp.atom g.Group.label
    :: List.map stencil_to_sexp (Group.stencils g))

let group_of_sexp = function
  | Sexp.List (Sexp.Atom "group" :: Sexp.Atom label :: stencils) ->
      let* stencils = collect stencil_of_sexp stencils in
      (match stencils with
      | [] -> Error "group: no stencils"
      | _ -> (
          try Ok (Group.make ~label stencils)
          with Invalid_argument msg -> Error msg))
  | s -> Error ("malformed group: " ^ Sexp.to_string s)

let group_to_string g = Format.asprintf "%a@." Sexp.pp (group_to_sexp g)

let group_of_string text =
  let* sexp = Sexp.parse text in
  group_of_sexp sexp
