open Sf_util

type t = { scale : Ivec.t; offset : Ivec.t }

let make ~scale ~offset =
  if Ivec.dims scale <> Ivec.dims offset then
    invalid_arg "Affine.make: rank mismatch";
  Array.iter
    (fun s -> if s < 0 then invalid_arg "Affine.make: negative scale")
    scale;
  { scale = Array.copy scale; offset = Array.copy offset }

let identity n = { scale = Ivec.make n 1; offset = Ivec.zero n }
let of_offset offset = { scale = Ivec.make (Ivec.dims offset) 1; offset }
let apply a x = Ivec.add (Ivec.mul a.scale x) a.offset
let shift a o = { a with offset = Ivec.add a.offset (Ivec.mul a.scale o) }
let is_unit_scale a = Array.for_all (fun s -> s = 1) a.scale
let is_identity a = is_unit_scale a && Ivec.is_zero a.offset
let dims a = Ivec.dims a.scale
let equal a b = Ivec.equal a.scale b.scale && Ivec.equal a.offset b.offset
let hash a = Hashc.combine (Ivec.hash a.scale) (Ivec.hash a.offset)

let pp ppf a =
  if is_unit_scale a then Format.fprintf ppf "%a" Ivec.pp a.offset
  else Format.fprintf ppf "%a*x+%a" Ivec.pp a.scale Ivec.pp a.offset
