(** Stencil expressions.

    An expression denotes, at every point [x] of a stencil's iteration
    domain, a double-precision value computed from grid reads at affine
    images of [x], named scalar parameters, and arithmetic.  Ordinary
    stencil taps are unit-scale reads [grid[x + o]]; restriction and
    interpolation use non-unit scales [grid[s ⊙ x + o]].  Components (weight
    arrays applied to a grid, the paper's [Component]) are expanded into
    this language by {!Component.to_expr}. *)

open Sf_util

type t =
  | Const of float
  | Param of string  (** scalar bound at kernel-invocation time *)
  | Read of string * Affine.t  (** grid read at [scale ⊙ x + offset] *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

val const : float -> t
val param : string -> t

val read : string -> Ivec.t -> t
(** Unit-scale read at the given offset. *)

val read_affine : string -> Affine.t -> t

(** Infix constructors, for embedding stencil formulas readably. *)

val ( +: ) : t -> t -> t
val ( -: ) : t -> t -> t
val ( *: ) : t -> t -> t
val ( /: ) : t -> t -> t
val neg : t -> t

val sum : t list -> t
(** [sum []] is [Const 0.]. *)

val rename_grids : (string -> string) -> t -> t
(** Rewrite every grid name (SPMD rank qualification, kernel inlining). *)

val shift : Ivec.t -> t -> t
(** [shift o e] rewrites [e] as evaluated at [x + o]: every read map [m]
    becomes [x ↦ m(x + o)].  This implements the paper's nested-component
    semantics: a weight expression attached to offset [o] is evaluated
    relative to the neighbour at [x + o]. *)

val reads : t -> (string * Affine.t) list
(** All grid reads, deduplicated, in a deterministic order. *)

val grids : t -> string list
(** Names of all grids read, deduplicated, sorted. *)

val params : t -> string list
(** Names of all scalar parameters, deduplicated, sorted. *)

val dims : t -> int option
(** Dimensionality of the read maps, or [None] if the expression reads no
    grid. Raises [Invalid_argument] if reads disagree on rank. *)

val simplify : t -> t
(** Constant folding and algebraic identities (x+0, x*1, x*0, --x).
    Preserves semantics for finite inputs; division is never reordered. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val eval :
  t -> read:(string -> Affine.t -> float) -> params:(string -> float) -> float
(** Reference denotation at one point: [read g m] must return the value of
    grid [g] at [m(x)]. *)
