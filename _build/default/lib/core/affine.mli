(** Per-axis affine index maps [x ↦ scale ⊙ x + offset].

    Snowflake's analysis is built on affine Diophantine indexing precisely so
    that multigrid restriction and interpolation — which index one grid at a
    constant multiple of the iteration point of another — are expressible
    (paper §III.A, §VI's contrast with SDSL's additive-only offsets).  A
    unit-scale map is an ordinary stencil offset. *)

open Sf_util

type t = { scale : Ivec.t; offset : Ivec.t }

val make : scale:Ivec.t -> offset:Ivec.t -> t
(** Raises [Invalid_argument] on rank mismatch or negative scale entries
    (zero is allowed and means "broadcast along this axis"). *)

val identity : int -> t
val of_offset : Ivec.t -> t
(** Unit scale. *)

val apply : t -> Ivec.t -> Ivec.t
(** [apply a x = a.scale ⊙ x + a.offset]. *)

val shift : t -> Ivec.t -> t
(** [shift a o] is the map [x ↦ a(x + o)], i.e. the offset grows by
    [scale ⊙ o].  This composes a stencil-entry offset into a nested weight
    expression. *)

val is_identity : t -> bool
val is_unit_scale : t -> bool
val dims : t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
