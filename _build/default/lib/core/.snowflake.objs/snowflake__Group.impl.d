lib/core/group.ml: Expr Format Hashc List Printf Sf_util Stencil String
