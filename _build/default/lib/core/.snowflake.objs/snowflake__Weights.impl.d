lib/core/weights.ml: Array Expr Format Hashc Ivec List Map Sf_util
