lib/core/dsl.ml: Array Domain Expr Fun Ivec List Printf Sf_util Stencil Weights
