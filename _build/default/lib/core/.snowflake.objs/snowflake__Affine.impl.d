lib/core/affine.ml: Array Format Hashc Ivec Sf_util
