lib/core/expr.ml: Affine Float Format Hashc Ivec List Set Sf_util String
