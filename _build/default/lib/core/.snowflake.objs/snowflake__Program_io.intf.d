lib/core/program_io.mli: Domain Expr Group Sexp Stencil
