lib/core/domain.mli: Format Ivec Sf_util
