lib/core/weights.mli: Expr Format Ivec Sf_util
