lib/core/component.ml: Expr Ivec List Sf_util Weights
