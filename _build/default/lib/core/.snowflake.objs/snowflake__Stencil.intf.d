lib/core/stencil.mli: Affine Domain Expr Format
