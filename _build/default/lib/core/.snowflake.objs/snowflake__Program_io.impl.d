lib/core/program_io.ml: Affine Array Domain Expr Format Group Ivec List Result Sexp Sf_util Stencil
