lib/core/affine.mli: Format Ivec Sf_util
