lib/core/sexp.ml: Format List Printf String
