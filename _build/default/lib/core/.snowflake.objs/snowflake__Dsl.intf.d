lib/core/dsl.mli: Ivec Sf_util Stencil Weights
