lib/core/group.mli: Format Stencil
