lib/core/domain.ml: Array Format Hashc Ivec List Printf Sf_util
