lib/core/sexp.mli: Format
