lib/core/stencil.ml: Affine Array Domain Expr Format Hashc Ivec List Printf Sf_util String
