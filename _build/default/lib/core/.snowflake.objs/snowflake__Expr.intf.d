lib/core/expr.mli: Affine Format Ivec Sf_util
