lib/core/component.mli: Expr Weights
