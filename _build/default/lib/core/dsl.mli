(** Convenience constructors for common stencil shapes and boundary
    families.

    Nothing here adds expressive power — everything is sugar over
    {!Weights}, {!Expr}, {!Domain} and {!Stencil} — but these are the
    shapes every structured-grid code reaches for, and the boundary
    families show the paper's claim that boundary conditions are ordinary
    stencils: Dirichlet and Neumann are small-offset copies, periodic
    wrap-around is a copy with an offset the size of the grid ("stencils
    with (sometimes) large offsets", §II.A). *)

open Sf_util

(** {2 Weight arrays} *)

val star_weights : dims:int -> center:float -> arm:float -> Weights.t
(** The (2·dims+1)-point star: [center] at the origin, [arm] on each
    axis-aligned neighbour. *)

val laplacian_weights : dims:int -> Weights.t
(** [star_weights ~center:(-2·dims) ~arm:1]. *)

val box_weights : dims:int -> radius:int -> weight:float -> Weights.t
(** Every offset with L∞ norm ≤ radius carries [weight] —
    [(2·radius+1)^dims] taps. *)

val box_blur_weights : dims:int -> radius:int -> Weights.t
(** {!box_weights} normalised to sum 1. *)

(** {2 Boundary families}

    All operate on the one-cell ghost ring of [grid]; faces only (the
    7-point-family operators never read ghost edges/corners). *)

val dirichlet_faces : dims:int -> grid:string -> Stencil.t list
(** ghost ← −(first interior): homogeneous Dirichlet at the face. *)

val neumann_faces : dims:int -> grid:string -> Stencil.t list
(** ghost ← first interior: zero normal derivative (insulated). *)

val periodic_faces : dims:int -> interior:int -> grid:string -> Stencil.t list
(** ghost ← the opposite side's interior plane: wrap-around, implemented
    as copies with offsets of ±[interior] cells.  [interior] is the
    interior extent per axis (cubic grids). *)

(** {2 Point stencils} *)

val copy : dims:int -> ?ghost:int -> out:string -> input:string -> unit ->
  Stencil.t
(** Interior copy at matching points. *)

val scale : dims:int -> ?ghost:int -> out:string -> input:string ->
  factor:float -> unit -> Stencil.t

val offsets_within : dims:int -> radius:int -> Ivec.t list
(** All offsets with L∞ norm ≤ radius, row-major — handy for building
    custom sparse arrays. *)
