open Sf_util

type t =
  | Const of float
  | Param of string
  | Read of string * Affine.t
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t

let const c = Const c
let param name = Param name
let read grid offset = Read (grid, Affine.of_offset offset)
let read_affine grid map = Read (grid, map)
let ( +: ) a b = Add (a, b)
let ( -: ) a b = Sub (a, b)
let ( *: ) a b = Mul (a, b)
let ( /: ) a b = Div (a, b)
let neg a = Neg a

let sum = function
  | [] -> Const 0.
  | e :: es -> List.fold_left ( +: ) e es

let rec rename_grids f = function
  | Const _ as e -> e
  | Param _ as e -> e
  | Read (g, m) -> Read (f g, m)
  | Neg e -> Neg (rename_grids f e)
  | Add (a, b) -> Add (rename_grids f a, rename_grids f b)
  | Sub (a, b) -> Sub (rename_grids f a, rename_grids f b)
  | Mul (a, b) -> Mul (rename_grids f a, rename_grids f b)
  | Div (a, b) -> Div (rename_grids f a, rename_grids f b)

let rec shift o = function
  | Const _ as e -> e
  | Param _ as e -> e
  | Read (g, m) -> Read (g, Affine.shift m o)
  | Neg e -> Neg (shift o e)
  | Add (a, b) -> Add (shift o a, shift o b)
  | Sub (a, b) -> Sub (shift o a, shift o b)
  | Mul (a, b) -> Mul (shift o a, shift o b)
  | Div (a, b) -> Div (shift o a, shift o b)

module ReadSet = Set.Make (struct
  type nonrec t = string * Affine.t

  let compare (g1, m1) (g2, m2) =
    let c = String.compare g1 g2 in
    if c <> 0 then c
    else
      let c = Ivec.compare m1.Affine.scale m2.Affine.scale in
      if c <> 0 then c else Ivec.compare m1.Affine.offset m2.Affine.offset
end)

let reads e =
  let rec go acc = function
    | Const _ | Param _ -> acc
    | Read (g, m) -> ReadSet.add (g, m) acc
    | Neg a -> go acc a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> go (go acc a) b
  in
  ReadSet.elements (go ReadSet.empty e)

let grids e = reads e |> List.map fst |> List.sort_uniq String.compare

let params e =
  let rec go acc = function
    | Const _ | Read _ -> acc
    | Param p -> p :: acc
    | Neg a -> go acc a
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> go (go acc a) b
  in
  go [] e |> List.sort_uniq String.compare

let dims e =
  match reads e with
  | [] -> None
  | (_, m0) :: rest ->
      let n = Affine.dims m0 in
      List.iter
        (fun (_, m) ->
          if Affine.dims m <> n then
            invalid_arg "Expr.dims: reads of differing rank")
        rest;
      Some n

let rec simplify e =
  match e with
  | Const _ | Param _ | Read _ -> e
  | Neg a -> (
      match simplify a with
      | Const c -> Const (-.c)
      | Neg b -> b
      | a' -> Neg a')
  | Add (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x +. y)
      | Const 0., b' -> b'
      | a', Const 0. -> a'
      | a', b' -> Add (a', b'))
  | Sub (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x -. y)
      | a', Const 0. -> a'
      | Const 0., b' -> Neg b'
      | a', b' -> Sub (a', b'))
  | Mul (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y -> Const (x *. y)
      | Const 0., _ | _, Const 0. -> Const 0.
      | Const 1., b' -> b'
      | a', Const 1. -> a'
      | Const (-1.), b' -> Neg b'
      | a', Const (-1.) -> Neg a'
      | a', b' -> Mul (a', b'))
  | Div (a, b) -> (
      match (simplify a, simplify b) with
      | Const x, Const y when y <> 0. -> Const (x /. y)
      | a', Const 1. -> a'
      | a', b' -> Div (a', b'))

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Param p, Param q -> String.equal p q
  | Read (g1, m1), Read (g2, m2) -> String.equal g1 g2 && Affine.equal m1 m2
  | Neg x, Neg y -> equal x y
  | Add (x1, y1), Add (x2, y2)
  | Sub (x1, y1), Sub (x2, y2)
  | Mul (x1, y1), Mul (x2, y2)
  | Div (x1, y1), Div (x2, y2) ->
      equal x1 x2 && equal y1 y2
  | (Const _ | Param _ | Read _ | Neg _ | Add _ | Sub _ | Mul _ | Div _), _ ->
      false

let rec hash = function
  | Const c -> Hashc.combine 1 (Hashc.float c)
  | Param p -> Hashc.combine 2 (Hashc.string p)
  | Read (g, m) -> Hashc.combine3 3 (Hashc.string g) (Affine.hash m)
  | Neg a -> Hashc.combine 4 (hash a)
  | Add (a, b) -> Hashc.combine3 5 (hash a) (hash b)
  | Sub (a, b) -> Hashc.combine3 6 (hash a) (hash b)
  | Mul (a, b) -> Hashc.combine3 7 (hash a) (hash b)
  | Div (a, b) -> Hashc.combine3 8 (hash a) (hash b)

let rec pp ppf = function
  | Const c -> Format.fprintf ppf "%g" c
  | Param p -> Format.fprintf ppf "$%s" p
  | Read (g, m) -> Format.fprintf ppf "%s[%a]" g Affine.pp m
  | Neg a -> Format.fprintf ppf "(- %a)" pp a
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Format.fprintf ppf "(%a / %a)" pp a pp b

let to_string e = Format.asprintf "%a" pp e

let rec eval e ~read ~params =
  match e with
  | Const c -> c
  | Param p -> params p
  | Read (g, m) -> read g m
  | Neg a -> -.eval a ~read ~params
  | Add (a, b) -> eval a ~read ~params +. eval b ~read ~params
  | Sub (a, b) -> eval a ~read ~params -. eval b ~read ~params
  | Mul (a, b) -> eval a ~read ~params *. eval b ~read ~params
  | Div (a, b) -> eval a ~read ~params /. eval b ~read ~params
