open Sf_util

type rect = { lo : Ivec.t; hi : Ivec.t; stride : Ivec.t }
type t = rect list

let rect ?stride ~lo ~hi () =
  let lo = Ivec.of_list lo and hi = Ivec.of_list hi in
  let n = Ivec.dims lo in
  if Ivec.dims hi <> n then invalid_arg "Domain.rect: lo/hi rank mismatch";
  let stride =
    match stride with
    | None -> Ivec.make n 1
    | Some s ->
        let s = Ivec.of_list s in
        if Ivec.dims s <> n then
          invalid_arg "Domain.rect: stride rank mismatch";
        Array.iter
          (fun x ->
            if x <= 0 then invalid_arg "Domain.rect: non-positive stride")
          s;
        s
  in
  { lo; hi; stride }

let of_rect r = [ r ]
let union a b = a @ b
let ( ++ ) = union

let interior n ~ghost =
  if ghost < 0 then invalid_arg "Domain.interior: negative ghost";
  [
    rect
      ~lo:(List.init n (fun _ -> ghost))
      ~hi:(List.init n (fun _ -> -ghost))
      ();
  ]

(* A colour class {x : Σx_i ≡ colour (mod c)} over the interior is not one
   strided rect, so we enumerate the residues of the first n-1 axes and fix
   the last axis residue to make the sum come out right: c^(n-1) rects with
   stride c on every axis.  For red-black in 2-D this is exactly the paper's
   two-rect union (Fig. 4, lines 11-12). *)
let colored n ~ghost ~color ~ncolors =
  if ncolors <= 0 then invalid_arg "Domain.colored: ncolors must be positive";
  if color < 0 || color >= ncolors then
    invalid_arg "Domain.colored: color out of range";
  if n <= 0 then invalid_arg "Domain.colored: dimension must be positive";
  let smallest_ge_ghost residue =
    (* least x >= ghost with x ≡ residue (mod ncolors) *)
    ghost + (((residue - ghost) mod ncolors + ncolors) mod ncolors)
  in
  let rec enumerate residues_rev remaining acc =
    if remaining = 0 then begin
      let outer = List.rev residues_rev in
      let sum_outer = List.fold_left ( + ) 0 outer in
      let last = ((color - sum_outer) mod ncolors + ncolors) mod ncolors in
      let residues = outer @ [ last ] in
      let lo = List.map smallest_ge_ghost residues in
      let hi = List.init n (fun _ -> -ghost) in
      let stride = List.init n (fun _ -> ncolors) in
      rect ~stride ~lo ~hi () :: acc
    end
    else
      let rec loop r acc =
        if r >= ncolors then acc
        else loop (r + 1) (enumerate (r :: residues_rev) (remaining - 1) acc)
      in
      loop 0 acc
  in
  List.rev (enumerate [] (n - 1) [])

let translate o d =
  List.map
    (fun r -> { r with lo = Ivec.add r.lo o; hi = Ivec.add r.hi o })
    d

let dims = function
  | [] -> None
  | r :: rest ->
      let n = Ivec.dims r.lo in
      List.iter
        (fun r' ->
          if Ivec.dims r'.lo <> n then
            invalid_arg "Domain.dims: mixed-rank union")
        rest;
      Some n

let rect_equal a b =
  Ivec.equal a.lo b.lo && Ivec.equal a.hi b.hi && Ivec.equal a.stride b.stride

let equal a b = List.length a = List.length b && List.for_all2 rect_equal a b

let rect_hash r =
  Hashc.combine3 (Ivec.hash r.lo) (Ivec.hash r.hi) (Ivec.hash r.stride)

let hash d = Hashc.list rect_hash d

let pp_rect ppf r =
  Format.fprintf ppf "[%a..%a by %a]" Ivec.pp r.lo Ivec.pp r.hi Ivec.pp
    r.stride

let pp ppf = function
  | [] -> Format.fprintf ppf "(empty domain)"
  | rs ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ++ ")
        pp_rect ppf rs

type resolved = { rlo : Ivec.t; rhi : Ivec.t; rstride : Ivec.t }

let resolve_rect ~shape r =
  let n = Ivec.dims r.lo in
  if Ivec.dims shape <> n then
    invalid_arg "Domain.resolve_rect: shape rank mismatch";
  let fix_lo i v = if v >= 0 then v else shape.(i) + v in
  let fix_hi i v = if v > 0 then v else shape.(i) + v in
  let rlo = Array.mapi fix_lo r.lo in
  let rhi = Array.mapi fix_hi r.hi in
  Array.iteri
    (fun i v ->
      if v < 0 || v > shape.(i) then
        invalid_arg
          (Printf.sprintf "Domain.resolve_rect: lower bound %d escapes axis %d"
             v i))
    rlo;
  Array.iteri
    (fun i v ->
      if v < 0 || v > shape.(i) then
        invalid_arg
          (Printf.sprintf "Domain.resolve_rect: upper bound %d escapes axis %d"
             v i))
    rhi;
  { rlo; rhi; rstride = Array.copy r.stride }

let resolve ~shape d = List.map (resolve_rect ~shape) d

let counts { rlo; rhi; rstride } =
  Array.init (Ivec.dims rlo) (fun i ->
      let extent = rhi.(i) - rlo.(i) in
      if extent <= 0 then 0 else (extent + rstride.(i) - 1) / rstride.(i))

let npoints r = Ivec.product (counts r)
let is_empty r = npoints r = 0

let mem r p =
  Ivec.dims p = Ivec.dims r.rlo
  &&
  let rec ok i =
    i >= Ivec.dims p
    || p.(i) >= r.rlo.(i)
       && p.(i) < r.rhi.(i)
       && (p.(i) - r.rlo.(i)) mod r.rstride.(i) = 0
       && ok (i + 1)
  in
  ok 0

let iter r f =
  let cnt = counts r in
  let n = Ivec.dims cnt in
  let total = Ivec.product cnt in
  if total > 0 then begin
    let p = Array.copy r.rlo in
    let k = Array.make n 0 in
    for _ = 1 to total do
      f p;
      let rec bump i =
        if i >= 0 then begin
          k.(i) <- k.(i) + 1;
          if k.(i) >= cnt.(i) then begin
            k.(i) <- 0;
            p.(i) <- r.rlo.(i);
            bump (i - 1)
          end
          else p.(i) <- p.(i) + r.rstride.(i)
        end
      in
      bump (n - 1)
    done
  end

let to_list r =
  let acc = ref [] in
  iter r (fun p -> acc := Array.copy p :: !acc);
  List.rev !acc

let npoints_union rs = List.fold_left (fun acc r -> acc + npoints r) 0 rs
