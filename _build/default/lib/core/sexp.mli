(** A minimal s-expression reader/writer (no external dependencies).

    Used by {!Program_io} to give stencil programs a stable textual form.
    Atoms are bare tokens (no quoting/escaping — grid names and numbers
    only need [A-Za-z0-9_.@+-]). *)

type t = Atom of string | List of t list

val parse : string -> (t, string) result
(** Parses exactly one s-expression (surrounding whitespace and
    [;]-to-end-of-line comments allowed). *)

val parse_many : string -> (t list, string) result

val to_string : t -> string
(** Compact single-line rendering. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering via the format boxes. *)

val atom : string -> t
val list : t list -> t
val int : int -> t
val float : float -> t

val as_atom : t -> (string, string) result
val as_int : t -> (int, string) result
val as_float : t -> (float, string) result
