open Sf_util

let term grid (offset, weight) =
  let gather = Expr.read grid offset in
  match Expr.simplify weight with
  | Expr.Const 1. -> gather
  | Expr.Const (-1.) -> Expr.neg gather
  | w -> Expr.(shift offset w *: gather)

let to_expr ~grid weights =
  Weights.entries weights |> List.map (term grid) |> Expr.sum |> Expr.simplify

(* Most of this codebase is 2-D or 3-D; a bare [point] defaults to 3-D,
   matching the HPGMG driver.  Use [point_n] when that is wrong. *)
let point_n n grid = Expr.read grid (Ivec.zero n)
let point grid = point_n 3 grid
