lib/distributed/spmd.mli: Grids Group Ivec Mesh Sf_mesh Sf_util Snowflake Stencil
