lib/distributed/spmd.ml: Array Domain Expr Fun Grids Group Ivec List Mesh Nd Printf Sf_backends Sf_hpgmg Sf_mesh Sf_util Snowflake Stencil String
