(** Wall-clock timing helpers for the experiment harness.

    The paper's methodology — an untimed warmup phase followed by the
    benchmarked phase (§V.A) — is baked in. *)

val time_once : (unit -> unit) -> float
(** Seconds for one invocation. *)

val time : ?warmup:int -> ?repeats:int -> (unit -> unit) -> float
(** Best-of-[repeats] (default 3) wall time after [warmup] (default 1)
    untimed runs.  Best-of is the right estimator for a dedicated machine:
    noise is strictly additive. *)

val time_all : ?warmup:int -> ?repeats:int -> (unit -> unit) -> float array
(** All the timed samples, for dispersion reporting. *)
