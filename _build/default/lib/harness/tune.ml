open Sf_util
open Sf_backends

let tile_candidates ~dims ~n =
  let cube size = Some (List.init dims (fun _ -> min size n)) in
  let skew () =
    (* small outer tiles, full-depth innermost axis: the tall-skinny idea *)
    Some (List.init dims (fun i -> if i = dims - 1 then n else min 8 n))
  in
  [ None; cube 4; cube 8; cube 16; skew () ]

type result = { config : Config.t; time : float }

let default_candidates ~dims ~n =
  List.concat_map
    (fun tile ->
      List.map
        (fun multicolor -> { Config.default with tile; multicolor })
        [ false; true ])
    (tile_candidates ~dims ~n)

let evaluate ?candidates ?(repeats = 2) ~backend ~shape ~params ~grids group =
  let candidates =
    match candidates with
    | Some cs -> cs
    | None ->
        let dims = Ivec.dims shape in
        default_candidates ~dims ~n:shape.(0)
  in
  (match candidates with
  | [] -> invalid_arg "Tune.evaluate: empty candidate list"
  | _ -> ());
  List.map
    (fun config ->
      let kernel = Jit.compile ~config backend ~shape group in
      let time =
        Timer.time ~warmup:1 ~repeats (fun () -> kernel.Kernel.run ~params grids)
      in
      { config; time })
    candidates

let best ?candidates ?repeats ~backend ~shape ~params ~grids group =
  let results = evaluate ?candidates ?repeats ~backend ~shape ~params ~grids group in
  List.fold_left
    (fun acc r -> match acc with Some b when b.time <= r.time -> acc | _ -> Some r)
    None results
  |> Option.get
