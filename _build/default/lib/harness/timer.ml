let time_once f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let time_all ?(warmup = 1) ?(repeats = 3) f =
  for _ = 1 to warmup do
    f ()
  done;
  Array.init repeats (fun _ -> time_once f)

let time ?warmup ?repeats f =
  Array.fold_left min infinity (time_all ?warmup ?repeats f)
