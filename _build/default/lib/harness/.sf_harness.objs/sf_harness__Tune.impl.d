lib/harness/tune.ml: Array Config Ivec Jit Kernel List Option Sf_backends Sf_util Timer
