lib/harness/timer.mli:
