lib/harness/timer.ml: Array Unix
