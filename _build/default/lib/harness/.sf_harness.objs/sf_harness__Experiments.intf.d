lib/harness/experiments.mli:
