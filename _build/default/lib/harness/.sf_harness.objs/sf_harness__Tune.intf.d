lib/harness/tune.mli: Config Grids Group Ivec Jit Sf_backends Sf_mesh Sf_util Snowflake
