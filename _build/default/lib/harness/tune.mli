(** A measured auto-tuner for the compilation knobs (paper §IV.A: tiling
    "provides a method of tuning tiling sizes"; §VI situates Snowflake
    beside PATUS-style autotuning).

    The tuner times a kernel across a candidate set of configurations and
    returns the fastest; it is deliberately simple (exhaustive over a
    small generated candidate list — the paper's knobs are few). *)

open Sf_util
open Sf_mesh
open Snowflake
open Sf_backends

val tile_candidates : dims:int -> n:int -> int list option list
(** [None] (outer chunking) plus cubic and skewed tile shapes that fit the
    extent [n]. *)

type result = {
  config : Config.t;
  time : float;  (** best-of seconds for one kernel run *)
}

val evaluate :
  ?candidates:Config.t list ->
  ?repeats:int ->
  backend:Jit.backend ->
  shape:Ivec.t ->
  params:(string * float) list ->
  grids:Grids.t ->
  Group.t ->
  result list
(** Every candidate with its measured time, in candidate order. *)

val best :
  ?candidates:Config.t list ->
  ?repeats:int ->
  backend:Jit.backend ->
  shape:Ivec.t ->
  params:(string * float) list ->
  grids:Grids.t ->
  Group.t ->
  result
(** Default candidates: every {!tile_candidates} entry crossed with
    multicolor on/off, at the base config's worker count.  Runs each
    candidate (warm-up + best-of [repeats], default 2) against the given
    meshes — note the meshes are mutated, which is fine for the stencils
    this is meant for (smoothers converge regardless of starting state). *)
