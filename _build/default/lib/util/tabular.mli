(** Minimal fixed-width ASCII table rendering for experiment output.

    The benchmark harness prints each reproduced figure/table of the paper as
    one of these tables, so rows stay greppable in [bench_output.txt]. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with the given column headers; all columns right-aligned except
    the first. *)

val create_aligned : headers:(string * align) list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header
    width. *)

val add_float_row : t -> fmt:(float -> string) -> string -> float list -> unit
(** [add_float_row t ~fmt label xs] adds [label :: List.map fmt xs]. *)

val render : t -> string

val render_csv : t -> string
(** Comma-separated rendering (no quoting — cell text in this codebase
    never contains commas), header row first. *)

val print : t -> unit
(** Render to stdout followed by a newline. *)
