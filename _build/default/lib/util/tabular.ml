type align = Left | Right

type t = {
  headers : (string * align) list;
  mutable rows : string list list; (* reverse order *)
}

let create ~headers =
  let aligned =
    List.mapi (fun i h -> (h, if i = 0 then Left else Right)) headers
  in
  { headers = aligned; rows = [] }

let create_aligned ~headers = { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tabular.add_row: row width mismatch";
  t.rows <- row :: t.rows

let add_float_row t ~fmt label xs = add_row t (label :: List.map fmt xs)

let render t =
  let rows = List.rev t.rows in
  let header_cells = List.map fst t.headers in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header_cells
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i c ->
          let _, align = List.nth t.headers i in
          pad align (List.nth widths i) c)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let sep =
    "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  String.concat "\n"
    (render_row header_cells :: sep :: List.map render_row rows)

let render_csv t =
  let rows = List.rev t.rows in
  let header = List.map fst t.headers in
  String.concat "\n" (List.map (String.concat ",") (header :: rows)) ^ "\n"

let print t = print_endline (render t)
