let mean xs =
  if Array.length xs = 0 then nan
  else Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let minimum xs =
  if Array.length xs = 0 then nan else Array.fold_left min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then nan else Array.fold_left max xs.(0) xs

let sorted xs =
  let c = Array.copy xs in
  Array.sort Float.compare c;
  c

let median xs =
  let n = Array.length xs in
  if n = 0 then nan
  else
    let s = sorted xs in
    if n mod 2 = 1 then s.(n / 2) else (s.((n / 2) - 1) +. s.(n / 2)) /. 2.

let percentile p xs =
  let n = Array.length xs in
  if n = 0 then nan
  else if n = 1 then xs.(0)
  else begin
    let s = sorted xs in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    s.(lo) +. (frac *. (s.(hi) -. s.(lo)))
  end

let summary xs = (`Mean (mean xs), `Median (median xs), `Min (minimum xs))
