type t = int array

let dims v = Array.length v
let zero n = Array.make n 0
let make n v = Array.make n v
let of_list = Array.of_list
let to_list = Array.to_list

let check_rank a b =
  if Array.length a <> Array.length b then
    invalid_arg "Ivec: rank mismatch"

let equal a b = Array.length a = Array.length b && Array.for_all2 ( = ) a b

let compare a b =
  let c = Stdlib.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let map2 f a b =
  check_rank a b;
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = map2 ( + ) a b
let sub a b = map2 ( - ) a b
let neg a = Array.map (fun x -> -x) a
let scale k a = Array.map (fun x -> k * x) a
let mul a b = map2 ( * ) a b

let dot a b =
  check_rank a b;
  let s = ref 0 in
  for i = 0 to Array.length a - 1 do
    s := !s + (a.(i) * b.(i))
  done;
  !s

let max2 a b = map2 max a b
let min2 a b = map2 min a b
let l1_norm a = Array.fold_left (fun acc x -> acc + abs x) 0 a
let linf_norm a = Array.fold_left (fun acc x -> max acc (abs x)) 0 a
let is_zero a = Array.for_all (fun x -> x = 0) a
let product a = Array.fold_left ( * ) 1 a

let hash a =
  (* FNV-style fold; good enough for hashtable keys over small vectors. *)
  Array.fold_left (fun acc x -> (acc * 1000003) lxor (x + 0x9e37)) 17 a

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (to_list v)

let to_string v = Format.asprintf "%a" pp v
