(** Hash combinators for building structural hashes of DSL values.

    These are used to key the JIT compile cache (see {!Sf_backends}), so the
    requirement is stability within a process and a low collision rate; they
    are not cryptographic. *)

val combine : int -> int -> int
val combine3 : int -> int -> int -> int
val list : ('a -> int) -> 'a list -> int
val array : ('a -> int) -> 'a array -> int
val pair : ('a -> int) -> ('b -> int) -> 'a * 'b -> int
val string : string -> int
val float : float -> int
val int : int -> int
