lib/util/ivec.mli: Format
