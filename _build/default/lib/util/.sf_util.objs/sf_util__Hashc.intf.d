lib/util/hashc.mli:
