lib/util/hashc.ml: Array Hashtbl List
