lib/util/tabular.ml: List String
