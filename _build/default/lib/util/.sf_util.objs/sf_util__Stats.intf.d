lib/util/stats.mli:
