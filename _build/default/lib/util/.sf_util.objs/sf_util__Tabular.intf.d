lib/util/tabular.mli:
