(** Basic descriptive statistics over float samples, used by the benchmark
    harness to summarise repeated timings. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for fewer than two samples. *)

val stddev : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val median : float array -> float
(** Median (average of the two central elements for even sizes). Does not
    modify its argument. *)

val percentile : float -> float array -> float
(** [percentile p xs] with [p] in [0, 100], nearest-rank with linear
    interpolation. Does not modify its argument. *)

val summary :
  float array -> [ `Mean of float ] * [ `Median of float ] * [ `Min of float ]
(** Convenience bundle for harness reporting. *)
