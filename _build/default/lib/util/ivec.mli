(** Small integer vectors.

    Offsets, shapes, strides and grid points are all represented as [int
    array] values of equal length (the spatial dimensionality).  The
    functions here are total over equal-length inputs and raise
    [Invalid_argument] on rank mismatch, which always indicates a
    programming error rather than a data error. *)

type t = int array

val dims : t -> int
(** Number of dimensions (array length). *)

val zero : int -> t
(** [zero n] is the origin in [n] dimensions. *)

val make : int -> int -> t
(** [make n v] is the [n]-dimensional vector whose entries are all [v]. *)

val of_list : int list -> t
val to_list : t -> int list

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic order. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : int -> t -> t
val mul : t -> t -> t
(** Pointwise product. *)

val dot : t -> t -> int
val map2 : (int -> int -> int) -> t -> t -> t
val max2 : t -> t -> t
val min2 : t -> t -> t

val l1_norm : t -> int
val linf_norm : t -> int

val is_zero : t -> bool

val product : t -> int
(** Product of the entries, e.g. the number of points of a shape. *)

val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
