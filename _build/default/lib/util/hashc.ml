let combine h1 h2 = (h1 * 1000003) lxor h2
let combine3 h1 h2 h3 = combine (combine h1 h2) h3
let list hash xs = List.fold_left (fun acc x -> combine acc (hash x)) 5381 xs

let array hash xs =
  Array.fold_left (fun acc x -> combine acc (hash x)) 5381 xs

let pair ha hb (a, b) = combine (ha a) (hb b)
let string = Hashtbl.hash
let float (f : float) = Hashtbl.hash f
let int (i : int) = Hashtbl.hash i
