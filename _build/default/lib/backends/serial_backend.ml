(* Sequential micro-compilers: the reference interpreter and the
   strength-reduced "C-like" executor.  Both run stencils in program order,
   rects in union order, points row-major — the DSL's sequential
   semantics. *)

open Snowflake

let compile_interp (cfg : Config.t) ~shape (group : Group.t) =
  let shape = Array.copy shape in
  let plans =
    List.map
      (fun s -> (s, Domain.resolve ~shape s.Stencil.domain))
      (Group.stencils group)
  in
  let run ?(params = []) grids =
    let params = Kernel.param_lookup params in
    List.iter
      (fun (s, rects) ->
        if cfg.Config.validate then Exec.validate_stencil grids ~shape s;
        List.iter (fun r -> Exec.run_rect_interp grids ~params s r) rects)
      plans
  in
  Kernel.make ~name:group.Group.label ~backend:"interp"
    ~description:
      (Printf.sprintf "interp: %d stencil(s), sequential" (List.length plans))
    run

let compile_compiled (cfg : Config.t) ~shape (group : Group.t) =
  let shape = Array.copy shape in
  let plans =
    List.map
      (fun s -> (s, Domain.resolve ~shape s.Stencil.domain))
      (Group.stencils group)
  in
  let cache = Run_cache.create () in
  let names = Group.grids group in
  let run ?(params = []) grids =
    let runners =
      Run_cache.get cache ~grids ~names ~params (fun () ->
          let lookup = Kernel.param_lookup params in
          List.concat_map
            (fun (s, rects) ->
              if cfg.Config.validate then Exec.validate_stencil grids ~shape s;
              let instantiate = Exec.prepare_compiled grids ~params:lookup s in
              List.map instantiate rects)
            plans)
    in
    List.iter (fun thunk -> thunk ()) runners
  in
  Kernel.make ~name:group.Group.label ~backend:"compiled"
    ~description:
      (Printf.sprintf "compiled: %d stencil(s), sequential"
         (List.length plans))
    run
