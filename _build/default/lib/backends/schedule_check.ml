open Snowflake
open Sf_analysis

type task = { stencil : Stencil.t; tiles : Domain.resolved list }

let writes_of t =
  List.map (Footprint.affine_image t.stencil.Stencil.out_map) t.tiles

(* reads grouped by grid, imaged over every tile of the task *)
let reads_by_grid t =
  List.map
    (fun (g, m) -> (g, List.map (Footprint.affine_image m) t.tiles))
    (Stencil.reads t.stencil)

let pair_conflict a b =
  let wa = writes_of a and wb = writes_of b in
  let ga = a.stencil.Stencil.output and gb = b.stencil.Stencil.output in
  if String.equal ga gb && Footprint.lattice_lists_intersect wa wb then
    Some "write/write"
  else if
    List.exists
      (fun (g, lats) ->
        String.equal g ga && Footprint.lattice_lists_intersect wa lats)
      (reads_by_grid b)
  then Some "write/read"
  else if
    List.exists
      (fun (g, lats) ->
        String.equal g gb && Footprint.lattice_lists_intersect wb lats)
      (reads_by_grid a)
  then Some "read/write"
  else None

let check_wave tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let result = ref (Ok ()) in
  (try
     for i = 0 to n - 1 do
       for j = i + 1 to n - 1 do
         match pair_conflict arr.(i) arr.(j) with
         | Some kind ->
             result :=
               Error
                 (Printf.sprintf "tasks %d (%s) and %d (%s) conflict: %s" i
                    arr.(i).stencil.Stencil.label j
                    arr.(j).stencil.Stencil.label kind);
             raise Exit
         | None -> ()
       done
     done
   with Exit -> ());
  !result

let check_waves waves =
  List.fold_left
    (fun acc wave -> match acc with Ok () -> check_wave wave | e -> e)
    (Ok ()) waves

let openmp_plan config ~shape group =
  let stencils = Array.of_list (Group.stencils group) in
  let plans = Array.map (Openmp_backend.plan_stencil config ~shape) stencils in
  let waves = Openmp_backend.waves_of config ~shape group in
  List.map
    (fun wave ->
      List.concat_map
        (fun idx ->
          let p = plans.(idx) in
          if p.Openmp_backend.parallel_ok then
            List.map
              (fun tile ->
                { stencil = p.Openmp_backend.stencil; tiles = [ tile ] })
              p.Openmp_backend.tiles
          else
            [ { stencil = p.Openmp_backend.stencil; tiles = p.Openmp_backend.tiles } ])
        wave)
    waves

let opencl_plan config ~shape group =
  List.map
    (fun s ->
      let e = Opencl_backend.plan_stencil config ~shape s in
      if e.Opencl_backend.parallel_ok then
        List.map
          (fun wg -> { stencil = s; tiles = [ wg ] })
          e.Opencl_backend.work_groups
      else [ { stencil = s; tiles = e.Opencl_backend.work_groups } ])
    (Group.stencils group)
