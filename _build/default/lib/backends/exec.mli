(** Rect executors: the innermost machinery shared by all backends.

    A backend lowers a stencil group to a schedule of (stencil, lattice
    tile) tasks.  {!prepare_compiled} performs the per-invocation
    compilation work for one stencil — polynomial normalisation
    ({!Polyform}), read grouping, delta computation, grid lookups — and
    returns a reusable, thread-safe tile runner; executing the (many)
    tiles then costs only index arithmetic.  Two execution strategies
    implement the same semantics:

    - {!run_rect_interp} walks the expression AST at every point with
      bounds-checked mesh access — slow, obviously correct, the oracle.
    - the compiled path plays the role of the generated C: per-grid flat
      indices are strength-reduced to incremental adds, polynomial
      expressions become unrolled monomial-table loops, and the inner loop
      performs unchecked reads/writes (legality is established beforehand
      by {!Sf_analysis.Footprint.check_in_bounds}).

    Execution order within a rect is row-major over the lattice; in-place
    stencils therefore see earlier writes of the same sweep, which is the
    DSL's sequential semantics.  Backends only reorder or parallelise when
    the analysis proves it unobservable. *)

open Sf_mesh
open Snowflake

val run_rect_interp :
  Grids.t -> params:(string -> float) -> Stencil.t -> Domain.resolved -> unit

val prepare_compiled :
  Grids.t -> params:(string -> float) -> Stencil.t ->
  (Domain.resolved -> unit -> unit)
(** Two-stage: applying the result to a tile *instantiates* it (geometry,
    buffers — do this once per tile, at plan-build time) and yields a
    zero-setup thunk executing the tile.  Thunks for distinct tiles may run
    concurrently; one thunk is not reentrant. *)

val run_rect_compiled :
  Grids.t -> params:(string -> float) -> Stencil.t -> Domain.resolved -> unit
(** [prepare_compiled] + immediate single-tile run (test convenience). *)

val validate_stencil : Grids.t -> shape:Sf_util.Ivec.t -> Stencil.t -> unit
(** Checks that every touched grid exists, ranks agree with the iteration
    shape, and all accesses stay in bounds; raises [Invalid_argument] with a
    descriptive message otherwise.  Backends call this once per kernel
    invocation before entering unchecked loops. *)
