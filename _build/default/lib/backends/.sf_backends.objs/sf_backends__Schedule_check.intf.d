lib/backends/schedule_check.mli: Config Domain Group Sf_util Snowflake Stencil
