lib/backends/serial_backend.ml: Array Config Domain Exec Group Kernel List Printf Run_cache Snowflake Stencil
