lib/backends/pool.ml: Array Atomic Domain
