lib/backends/run_cache.ml: Grids List Mesh Sf_mesh
