lib/backends/opencl_backend.ml: Array Config Dependence Domain Exec Group Kernel List Multicolor Pool Printf Run_cache Sf_analysis Snowflake Stencil Tiling
