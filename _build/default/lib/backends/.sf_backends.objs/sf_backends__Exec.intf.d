lib/backends/exec.mli: Domain Grids Sf_mesh Sf_util Snowflake Stencil
