lib/backends/polyform.mli: Affine Expr Snowflake
