lib/backends/polyform.ml: Affine Expr List Map Option Sf_util Snowflake String
