lib/backends/multicolor.mli: Domain Snowflake
