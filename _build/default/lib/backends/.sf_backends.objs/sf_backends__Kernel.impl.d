lib/backends/kernel.ml: Grids List Printf Sf_mesh
