lib/backends/config.mli:
