lib/backends/openmp_backend.ml: Array Config Dependence Domain Exec Format Group Kernel List Multicolor Pool Run_cache Schedule Sf_analysis Snowflake Stencil Tiling
