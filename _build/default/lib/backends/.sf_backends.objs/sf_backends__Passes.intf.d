lib/backends/passes.mli: Config Group Ivec Sf_util Snowflake
