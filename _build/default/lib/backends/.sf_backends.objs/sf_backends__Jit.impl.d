lib/backends/jit.ml: Config Group Hashtbl Ivec Kernel List Opencl_backend Openmp_backend Passes Printf Serial_backend Sf_util Snowflake Stencil String
