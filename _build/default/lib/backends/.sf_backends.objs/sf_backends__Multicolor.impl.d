lib/backends/multicolor.ml: Domain Ivec List Sf_util Snowflake
