lib/backends/pool.mli:
