lib/backends/tiling.ml: Array Domain Ivec List Sf_util Snowflake
