lib/backends/schedule_check.ml: Array Domain Footprint Group List Opencl_backend Openmp_backend Printf Sf_analysis Snowflake Stencil String
