lib/backends/exec.ml: Affine Array Domain Expr Float Grids Ivec List Mesh Polyform Printf Sf_analysis Sf_mesh Sf_util Snowflake Stencil String
