lib/backends/config.ml:
