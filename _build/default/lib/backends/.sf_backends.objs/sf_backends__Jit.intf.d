lib/backends/jit.mli: Config Group Ivec Kernel Sf_util Snowflake Stencil
