lib/backends/run_cache.mli: Grids Sf_mesh
