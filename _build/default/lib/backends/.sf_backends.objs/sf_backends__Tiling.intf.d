lib/backends/tiling.mli: Domain Snowflake
