lib/backends/passes.ml: Config Group List Schedule Sf_analysis Snowflake Stencil String
