lib/backends/kernel.mli: Grids Sf_mesh
