open Sf_util
open Snowflake

let interleave tiles_per_color =
  let tagged =
    List.concat_map
      (fun tiles -> List.mapi (fun i t -> (t.Domain.rlo, i, t)) tiles)
      tiles_per_color
  in
  let compare_tag (lo1, i1, _) (lo2, i2, _) =
    let c = Ivec.compare lo1 lo2 in
    if c <> 0 then c else compare i1 i2
  in
  List.stable_sort compare_tag tagged |> List.map (fun (_, _, t) -> t)
