open Snowflake

type read = string * Affine.t
type mono = { coeff : float; reads : read list }
type t = { const : float; monos : mono list }

let max_degree = 4
let max_monos = 128

let compare_read (g1, m1) (g2, m2) =
  let c = String.compare g1 g2 in
  if c <> 0 then c
  else
    let c = Sf_util.Ivec.compare m1.Affine.scale m2.Affine.scale in
    if c <> 0 then c
    else Sf_util.Ivec.compare m1.Affine.offset m2.Affine.offset

module Key = Map.Make (struct
  type t = read list

  let compare a b = List.compare compare_read a b
end)

(* A polynomial under construction: monomial key (sorted read list) ->
   coefficient.  The empty key is the constant term. *)
type acc = float Key.t

let const_poly c : acc = if c = 0. then Key.empty else Key.singleton [] c

let add_poly (a : acc) (b : acc) : acc =
  Key.union (fun _ x y -> Some (x +. y)) a b

let scale_poly k (a : acc) : acc =
  if k = 0. then Key.empty else Key.map (fun c -> k *. c) a

exception Too_big

let mul_poly (a : acc) (b : acc) : acc =
  let result = ref Key.empty in
  Key.iter
    (fun ra ca ->
      Key.iter
        (fun rb cb ->
          let reads = List.sort compare_read (ra @ rb) in
          if List.length reads > max_degree then raise Too_big;
          result :=
            Key.update reads
              (function None -> Some (ca *. cb) | Some c -> Some (c +. (ca *. cb)))
              !result;
          if Key.cardinal !result > max_monos then raise Too_big)
        b)
    a;
  !result

let of_expr ~params expr =
  let rec go = function
    | Expr.Const c -> const_poly c
    | Expr.Param p -> const_poly (params p)
    | Expr.Read (g, m) -> Key.singleton [ (g, m) ] 1.
    | Expr.Neg a -> scale_poly (-1.) (go a)
    | Expr.Add (a, b) -> add_poly (go a) (go b)
    | Expr.Sub (a, b) -> add_poly (go a) (scale_poly (-1.) (go b))
    | Expr.Mul (a, b) -> mul_poly (go a) (go b)
    | Expr.Div (a, b) -> (
        let pb = go b in
        match Key.bindings pb with
        | [] -> raise Too_big (* division by the zero polynomial *)
        | [ ([], c) ] when c <> 0. -> scale_poly (1. /. c) (go a)
        | _ -> raise Too_big (* reads in a denominator: not polynomial *))
  in
  match go expr with
  | poly ->
      let const = match Key.find_opt [] poly with Some c -> c | None -> 0. in
      let monos =
        Key.fold
          (fun reads coeff acc ->
            if reads = [] || coeff = 0. then acc
            else { coeff; reads } :: acc)
          poly []
        |> List.rev
      in
      Some { const; monos }
  | exception Too_big -> None

let eval t ~read_value =
  List.fold_left
    (fun acc m ->
      acc
      +. List.fold_left (fun p r -> p *. read_value r) m.coeff m.reads)
    t.const t.monos

type factored = {
  fconst : float;
  flinear : (read * float) list;
  ffactors : (read * factored) list;
  fresidual : mono list;
      (* higher-degree monomials sharing no read with any other: evaluated
         directly rather than through a singleton factor *)
}

(* Remove one occurrence of [r] from a sorted read list. *)
let remove_one r reads =
  let rec go = function
    | [] -> None
    | x :: rest ->
        if compare_read x r = 0 then Some rest
        else Option.map (fun rs -> x :: rs) (go rest)
  in
  go reads

let rec factorize_monos ~const monos =
  let linear, higher =
    List.partition (fun m -> List.length m.reads <= 1) monos
  in
  let fconst =
    const
    +. List.fold_left
         (fun acc m -> if m.reads = [] then acc +. m.coeff else acc)
         0. linear
  in
  let flinear =
    List.filter_map
      (fun m -> match m.reads with [ r ] -> Some (r, m.coeff) | _ -> None)
      linear
  in
  let rec pull higher acc =
    match higher with
    | [] -> (List.rev acc, [])
    | _ ->
        (* read occurring in the most remaining higher-degree monomials *)
        let counts = ref Key.empty in
        List.iter
          (fun m ->
            List.sort_uniq compare_read m.reads
            |> List.iter (fun r ->
                   counts :=
                     Key.update [ r ]
                       (function None -> Some 1. | Some c -> Some (c +. 1.))
                       !counts))
          higher;
        let best =
          Key.fold
            (fun k c (bk, bc) -> if c > bc then (k, c) else (bk, bc))
            !counts ([], 0.)
        in
        let r, best_count =
          match best with [ r ], c -> (r, c) | _ -> assert false
        in
        if best_count < 2. then (List.rev acc, higher)
        else begin
          let withr, without =
            List.partition
              (fun m -> Option.is_some (remove_one r m.reads))
              higher
          in
          let quotient =
            List.map
              (fun m -> { m with reads = Option.get (remove_one r m.reads) })
              withr
          in
          pull without ((r, factorize_monos ~const:0. quotient) :: acc)
        end
  in
  let ffactors, fresidual = pull higher [] in
  { fconst; flinear; ffactors; fresidual }

let factorize t = factorize_monos ~const:t.const t.monos

let rec eval_factored f ~read_value =
  let acc =
    List.fold_left
      (fun acc (r, w) -> acc +. (w *. read_value r))
      f.fconst f.flinear
  in
  let acc =
    List.fold_left
      (fun acc (r, sub) ->
        acc +. (read_value r *. eval_factored sub ~read_value))
      acc f.ffactors
  in
  List.fold_left
    (fun acc m ->
      acc +. List.fold_left (fun p r -> p *. read_value r) m.coeff m.reads)
    acc f.fresidual
