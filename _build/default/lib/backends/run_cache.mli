(** Per-kernel invocation cache.

    A compiled kernel's run-time setup (bounds validation, polynomial
    normalisation, read grouping) depends only on which mesh objects are
    bound to the group's grid names and on the scalar parameter values.
    Solvers call the same kernel on the same meshes thousands of times —
    a V-cycle visits a 4³ level as often as the 128³ one — so backends
    memoise the prepared state under a cheap identity key: the physical
    identities of the bound meshes plus the structural parameter list.
    Rebinding a grid or changing a parameter invalidates the entry
    (single-entry cache: the common pattern is steady bindings). *)

open Sf_mesh

type 'a t

val create : unit -> 'a t

val get :
  'a t ->
  grids:Grids.t ->
  names:string list ->
  params:(string * float) list ->
  (unit -> 'a) ->
  'a
(** [get cache ~grids ~names ~params build] returns the cached value when
    every mesh bound to [names] is physically the same object as at build
    time and [params] is structurally equal; otherwise runs [build] and
    caches its result. *)
