(** Dynamic-plan conflict checking.

    A backend's parallel plan is a list of waves, each wave a set of tasks
    executed concurrently; a task covers one tile (or, for a stencil the
    analysis could not prove point-parallel, its whole domain run
    sequentially).  [check_wave] verifies the fundamental safety property
    the Diophantine analysis is supposed to guarantee — no two concurrent
    tasks touch the same cell with at least one write — by exact lattice
    intersection over the *actual tiles* of the plan.  The test suite runs
    it over randomly generated groups as an end-to-end check on the
    analysis + tiling + scheduling pipeline. *)

open Snowflake

type task = { stencil : Stencil.t; tiles : Domain.resolved list }
(** Lattice points this task iterates; intra-task ordering is sequential,
    so only inter-task overlap is a conflict. *)

val check_wave : task list -> (unit, string) result
(** [Error msg] names the first conflicting pair. *)

val check_waves : task list list -> (unit, string) result

val openmp_plan :
  Config.t -> shape:Sf_util.Ivec.t -> Group.t -> task list list
(** The exact wave/task decomposition the OpenMP backend executes. *)

val opencl_plan :
  Config.t -> shape:Sf_util.Ivec.t -> Group.t -> task list list
(** Work-group decomposition of the OpenCL backend; each enqueue is its
    own wave (in-order queue). *)
