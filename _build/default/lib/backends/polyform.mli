(** Polynomial normal form of stencil expressions.

    Most stencil bodies — including every operator in HPGMG — are small
    polynomials over grid reads once scalar parameters are substituted:
    the CC Laplacian is linear, a variable-coefficient GSRB update is
    cubic (dinv · β · u terms).  The compiled backend normalises the
    expression tree into [const + Σ coeff · r₁(·r₂(·r₃))] and executes the
    monomial table with tight index arithmetic, replacing the closure-tree
    walk — the same strength reduction the paper's micro-compiler gets by
    emitting straight-line C.

    Normalisation reassociates floating-point arithmetic, so results may
    differ from the reference interpreter by rounding (≲ 1e-12
    relatively); the oracle tests compare with an appropriate tolerance.

    Expressions that are not polynomial (a grid read in a denominator) or
    that would expand too much return [None] and fall back to the closure
    path. *)

open Snowflake

type read = string * Affine.t

type mono = { coeff : float; reads : read list (* length 1..max_degree *) }

type t = { const : float; monos : mono list }

val max_degree : int
(** 4 — enough for every operator in this repository with headroom. *)

val max_monos : int
(** 128 — expansion size guard. *)

val of_expr : params:(string -> float) -> Expr.t -> t option
(** [None] when the expression is not a (small) polynomial over reads.
    Like monomials are merged; zero-coefficient monomials dropped. *)

val eval : t -> read_value:(read -> float) -> float
(** Reference evaluation of the normal form (used by tests to check the
    normalisation itself against {!Expr.eval}). *)

(** {2 Common-factor extraction}

    A flat monomial table loads every tap of every monomial; most
    higher-degree stencil polynomials share factors (the GSRB update's
    twelve cubic terms all carry [dinv(0)]).  [factorize] rewrites the
    table as [const + Σ wᵢ·rᵢ + Σ rⱼ·subⱼ], greedily pulling out the read
    occurring in the most higher-degree monomials — a Horner-style scheme
    that reduces the GSRB body from 38 tap loads to the ~20 a hand kernel
    performs. *)

type factored = {
  fconst : float;
  flinear : (read * float) list;
  ffactors : (read * factored) list;
  fresidual : mono list;
      (** higher-degree monomials that share no read with any other monomial
          at this level: evaluated directly (a singleton factor would only
          add call overhead) *)
}

val factorize : t -> factored

val eval_factored : factored -> read_value:(read -> float) -> float
(** Reference evaluation of the factored form (tested ≡ {!eval} up to
    rounding). *)
