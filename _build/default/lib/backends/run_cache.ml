open Sf_mesh

type 'a entry = {
  meshes : Mesh.t list;  (** in [names] order, compared with [==] *)
  params : (string * float) list;
  value : 'a;
}

type 'a t = 'a entry option ref

let create () = ref None

let get cache ~grids ~names ~params build =
  let meshes = List.map (Grids.find grids) names in
  match !cache with
  | Some e
    when List.length e.meshes = List.length meshes
         && List.for_all2 ( == ) e.meshes meshes
         && e.params = params ->
      e.value
  | Some _ | None ->
      let value = build () in
      cache := Some { meshes; params; value };
      value
