(** A small fork-join task pool over OCaml domains.

    This is the substrate standing in for the paper's OpenMP runtime: a
    parallel region executes an array of independent tasks and joins
    (an implicit barrier).  With [workers <= 1] everything runs inline on
    the calling domain, which is also the sensible default on a single-core
    host; the scheduling code path is identical either way.

    Tasks within one [run_tasks] call MUST be independent — that is exactly
    what the Diophantine analysis certifies before a backend enqueues
    them. *)

type t

val create : workers:int -> t
(** [workers] is the total degree of parallelism (like [OMP_NUM_THREADS]);
    values below 2 mean sequential execution.  Creation is cheap; domains
    are spawned per parallel region, not kept hot. *)

val workers : t -> int

val sequential : t
(** A pool that always runs inline. *)

val run_tasks : t -> (unit -> unit) array -> unit
(** Execute all tasks and return when every one has finished.  Tasks are
    distributed dynamically (an atomic work counter — task farming, not
    static chunking, matching the paper's OpenMP backend).  Exceptions in
    tasks are re-raised on the caller after the join. *)

val parallel_for : t -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f 0 .. f (n-1)] as tasks. *)
