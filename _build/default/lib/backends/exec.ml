open Sf_util
open Sf_mesh
open Snowflake

let run_rect_interp grids ~params (s : Stencil.t) rect =
  let out = Grids.find grids s.Stencil.output in
  let read g m p = Mesh.get (Grids.find grids g) (Affine.apply m p) in
  Domain.iter rect (fun p ->
      let v = Expr.eval s.Stencil.expr ~read:(fun g m -> read g m p) ~params in
      Mesh.set out (Affine.apply s.Stencil.out_map p) v)

(* ------------------------------------------------------------------- *)
(* Closure-compiled fallback: one slot per distinct (grid, map) pair    *)
(* with incrementally maintained flat indices.  Used for the rare       *)
(* non-polynomial expressions (e.g. a grid read in a denominator).      *)
(* ------------------------------------------------------------------- *)

type slot = { data : floatarray; base : int; inc : int array }

let make_slot (mesh : Mesh.t) (m : Affine.t) (rect : Domain.resolved) =
  let strides = Mesh.strides mesh in
  let n = Array.length strides in
  let origin = Affine.apply m rect.Domain.rlo in
  let base = Ivec.dot strides origin in
  let inc =
    Array.init n (fun i ->
        strides.(i) * m.Affine.scale.(i) * rect.Domain.rstride.(i))
  in
  { data = Mesh.data mesh; base; inc }

let compile_expr expr ~params ~slot_index ~cur =
  let rec go = function
    | Expr.Const c -> fun () -> c
    | Expr.Param p ->
        let v = params p in
        fun () -> v
    | Expr.Read (g, m) ->
        let j, data = slot_index (g, m) in
        fun () -> Float.Array.unsafe_get data (Array.unsafe_get cur j)
    | Expr.Neg a ->
        let fa = go a in
        fun () -> -.fa ()
    | Expr.Add (a, b) ->
        let fa = go a and fb = go b in
        fun () -> fa () +. fb ()
    | Expr.Sub (a, b) ->
        let fa = go a and fb = go b in
        fun () -> fa () -. fb ()
    | Expr.Mul (a, b) ->
        let fa = go a and fb = go b in
        fun () -> fa () *. fb ()
    | Expr.Div (a, b) ->
        let fa = go a and fb = go b in
        fun () -> fa () /. fb ()
  in
  go expr

let run_rect_closure grids ~params (s : Stencil.t) rect =
  let cnt = Domain.counts rect in
  let n = Ivec.dims cnt in
  let reads = Stencil.reads s in
  let k = List.length reads in
  let slots =
    Array.of_list
      (List.map (fun (g, m) -> make_slot (Grids.find grids g) m rect) reads)
  in
  let out_slot =
    make_slot (Grids.find grids s.Stencil.output) s.Stencil.out_map rect
  in
  let cur = Array.make (max k 1) 0 in
  let slot_index (g, m) =
    let rec find j = function
      | [] -> assert false (* reads is exactly the list we indexed *)
      | (g', m') :: rest ->
          if String.equal g g' && Affine.equal m m' then (j, slots.(j).data)
          else find (j + 1) rest
    in
    find 0 reads
  in
  let eval = compile_expr s.Stencil.expr ~params ~slot_index ~cur in
  let out_data = out_slot.data in
  let inner = n - 1 in
  let inner_cnt = cnt.(inner) in
  let inner_incs = Array.map (fun sl -> sl.inc.(inner)) slots in
  let out_inner_inc = out_slot.inc.(inner) in
  let outer_total = ref 1 in
  for i = 0 to inner - 1 do
    outer_total := !outer_total * cnt.(i)
  done;
  let oidx = Array.make (max inner 1) 0 in
  for _row = 0 to !outer_total - 1 do
    for j = 0 to k - 1 do
      let sl = slots.(j) in
      let flat = ref sl.base in
      for i = 0 to inner - 1 do
        flat := !flat + (oidx.(i) * sl.inc.(i))
      done;
      cur.(j) <- !flat
    done;
    let out_flat = ref out_slot.base in
    for i = 0 to inner - 1 do
      out_flat := !out_flat + (oidx.(i) * out_slot.inc.(i))
    done;
    for _c = 0 to inner_cnt - 1 do
      Float.Array.unsafe_set out_data !out_flat (eval ());
      out_flat := !out_flat + out_inner_inc;
      for j = 0 to k - 1 do
        cur.(j) <- cur.(j) + inner_incs.(j)
      done
    done;
    let rec bump i =
      if i >= 0 then begin
        oidx.(i) <- oidx.(i) + 1;
        if oidx.(i) >= cnt.(i) then begin
          oidx.(i) <- 0;
          bump (i - 1)
        end
      end
    in
    bump (inner - 1)
  done

(* ------------------------------------------------------------------- *)
(* Polynomial fast path: the expression is a table of constant-coeff   *)
(* monomials over grid reads.  Reads are grouped by (grid, scale); one  *)
(* flat counter per group tracks Σ strideᵢ·scaleᵢ·xᵢ, and each read is  *)
(* a constant delta off its group's counter.  All of this is computed   *)
(* once per kernel invocation; running a tile costs index arithmetic    *)
(* only — the strength-reduced inner loop the emitted C would have.     *)
(* ------------------------------------------------------------------- *)

(* Arity-specialised inner evaluators for purely linear (degree-1)
   stencils over grids that advance in lockstep: the common case (CC
   Laplacian, Jacobi, boundaries, restriction) becomes an unrolled
   multiply-add chain with the tap deltas resident in the closure —
   the code shape the emitted C would compile to. *)
let deg1_inner ~kconst ~(taps : (floatarray * int * float) array) =
  let g = Float.Array.unsafe_get in
  match taps with
  | [| (a0, d0, w0) |] -> fun pos -> kconst +. (w0 *. g a0 (pos + d0))
  | [| (a0, d0, w0); (a1, d1, w1) |] ->
      fun pos -> kconst +. (w0 *. g a0 (pos + d0)) +. (w1 *. g a1 (pos + d1))
  | [| (a0, d0, w0); (a1, d1, w1); (a2, d2, w2) |] ->
      fun pos ->
        kconst
        +. (w0 *. g a0 (pos + d0))
        +. (w1 *. g a1 (pos + d1))
        +. (w2 *. g a2 (pos + d2))
  | [| (a0, d0, w0); (a1, d1, w1); (a2, d2, w2); (a3, d3, w3) |] ->
      fun pos ->
        kconst
        +. (w0 *. g a0 (pos + d0))
        +. (w1 *. g a1 (pos + d1))
        +. (w2 *. g a2 (pos + d2))
        +. (w3 *. g a3 (pos + d3))
  | [|
   (a0, d0, w0); (a1, d1, w1); (a2, d2, w2); (a3, d3, w3); (a4, d4, w4);
  |] ->
      fun pos ->
        kconst
        +. (w0 *. g a0 (pos + d0))
        +. (w1 *. g a1 (pos + d1))
        +. (w2 *. g a2 (pos + d2))
        +. (w3 *. g a3 (pos + d3))
        +. (w4 *. g a4 (pos + d4))
  | [|
   (a0, d0, w0);
   (a1, d1, w1);
   (a2, d2, w2);
   (a3, d3, w3);
   (a4, d4, w4);
   (a5, d5, w5);
  |] ->
      fun pos ->
        kconst
        +. (w0 *. g a0 (pos + d0))
        +. (w1 *. g a1 (pos + d1))
        +. (w2 *. g a2 (pos + d2))
        +. (w3 *. g a3 (pos + d3))
        +. (w4 *. g a4 (pos + d4))
        +. (w5 *. g a5 (pos + d5))
  | [|
   (a0, d0, w0);
   (a1, d1, w1);
   (a2, d2, w2);
   (a3, d3, w3);
   (a4, d4, w4);
   (a5, d5, w5);
   (a6, d6, w6);
  |] ->
      fun pos ->
        kconst
        +. (w0 *. g a0 (pos + d0))
        +. (w1 *. g a1 (pos + d1))
        +. (w2 *. g a2 (pos + d2))
        +. (w3 *. g a3 (pos + d3))
        +. (w4 *. g a4 (pos + d4))
        +. (w5 *. g a5 (pos + d5))
        +. (w6 *. g a6 (pos + d6))
  | [|
   (a0, d0, w0);
   (a1, d1, w1);
   (a2, d2, w2);
   (a3, d3, w3);
   (a4, d4, w4);
   (a5, d5, w5);
   (a6, d6, w6);
   (a7, d7, w7);
  |] ->
      fun pos ->
        kconst
        +. (w0 *. g a0 (pos + d0))
        +. (w1 *. g a1 (pos + d1))
        +. (w2 *. g a2 (pos + d2))
        +. (w3 *. g a3 (pos + d3))
        +. (w4 *. g a4 (pos + d4))
        +. (w5 *. g a5 (pos + d5))
        +. (w6 *. g a6 (pos + d6))
        +. (w7 *. g a7 (pos + d7))
  | taps ->
      fun pos ->
        let acc = ref kconst in
        for m = 0 to Array.length taps - 1 do
          let a, d, w = Array.unsafe_get taps m in
          acc := !acc +. (w *. g a (pos + d))
        done;
        !acc

type prep = {
  gmeta : (floatarray * int array (* mesh strides *) * int array (* scale *)) array;
  gdata : floatarray array;
  n1 : int;
  c1 : float array;
  i1 : int array;
  n2 : int;
  c2 : float array;
  i2 : int array;
  n3 : int;
  c3 : float array;
  i3 : int array;
  n4 : int;
  c4 : float array;
  i4 : int array;
  kconst : float;
  out_data : floatarray;
  out_strides : int array;
  out_map : Affine.t;
  uniform : bool;
      (* every group advances in lockstep (equal stride·scale), so a single
         position counter serves all reads and [eval_uniform] applies *)
  eval_uniform : int -> float;
}

(* Unshared higher-degree monomials, evaluated directly from parallel
   (unboxed) tables: one loop per monomial degree. *)
let residual_inner ~tap_of (monos : Polyform.mono list) =
  let by_degree d =
    List.filter
      (fun (m : Polyform.mono) -> List.length m.Polyform.reads = d)
      monos
  in
  let table d =
    let ms = by_degree d in
    let count = List.length ms in
    let w = Array.make (max count 1) 0. in
    let arrs = Array.make (max (count * d) 1) (Float.Array.create 0) in
    let deltas = Array.make (max (count * d) 1) 0 in
    List.iteri
      (fun i (m : Polyform.mono) ->
        w.(i) <- m.Polyform.coeff;
        List.iteri
          (fun t r ->
            let a, delta = tap_of r in
            arrs.((i * d) + t) <- a;
            deltas.((i * d) + t) <- delta)
          m.Polyform.reads)
      ms;
    (count, w, arrs, deltas)
  in
  let n2, w2, a2, d2 = table 2 in
  let n3, w3, a3, d3 = table 3 in
  let n4, w4, a4, d4 = table 4 in
  let g = Float.Array.unsafe_get in
  fun pos ->
    let acc = ref 0. in
    for m = 0 to n2 - 1 do
      let b = m * 2 in
      acc :=
        !acc
        +. Array.unsafe_get w2 m
           *. g (Array.unsafe_get a2 b) (pos + Array.unsafe_get d2 b)
           *. g
                (Array.unsafe_get a2 (b + 1))
                (pos + Array.unsafe_get d2 (b + 1))
    done;
    for m = 0 to n3 - 1 do
      let b = m * 3 in
      acc :=
        !acc
        +. Array.unsafe_get w3 m
           *. g (Array.unsafe_get a3 b) (pos + Array.unsafe_get d3 b)
           *. g
                (Array.unsafe_get a3 (b + 1))
                (pos + Array.unsafe_get d3 (b + 1))
           *. g
                (Array.unsafe_get a3 (b + 2))
                (pos + Array.unsafe_get d3 (b + 2))
    done;
    for m = 0 to n4 - 1 do
      let b = m * 4 in
      acc :=
        !acc
        +. Array.unsafe_get w4 m
           *. g (Array.unsafe_get a4 b) (pos + Array.unsafe_get d4 b)
           *. g
                (Array.unsafe_get a4 (b + 1))
                (pos + Array.unsafe_get d4 (b + 1))
           *. g
                (Array.unsafe_get a4 (b + 2))
                (pos + Array.unsafe_get d4 (b + 2))
           *. g
                (Array.unsafe_get a4 (b + 3))
                (pos + Array.unsafe_get d4 (b + 3))
    done;
    !acc

(* Compile a factored polynomial (Polyform.factorize) into a direct
   evaluator over a single shared position counter.  Only valid when every
   read group advances in lockstep. *)
let rec compile_factored ~tap_of (f : Polyform.factored) =
  let taps =
    Array.of_list
      (List.map
         (fun (r, w) ->
           let a, d = tap_of r in
           (a, d, w))
         f.Polyform.flinear)
  in
  let lin = deg1_inner ~kconst:f.Polyform.fconst ~taps in
  match (f.Polyform.ffactors, f.Polyform.fresidual) with
  | [], [] -> lin
  | factors, residual ->
      let subs =
        Array.of_list
          (List.map
             (fun (r, sub) ->
               let a, d = tap_of r in
               (a, d, compile_factored ~tap_of sub))
             factors)
      in
      let res =
        match residual with
        | [] -> None
        | monos -> Some (residual_inner ~tap_of monos)
      in
      fun pos ->
        let acc = ref (lin pos) in
        for i = 0 to Array.length subs - 1 do
          let a, d, sub = Array.unsafe_get subs i in
          acc := !acc +. (Float.Array.unsafe_get a (pos + d) *. sub pos)
        done;
        (match res with Some r -> acc := !acc +. r pos | None -> ());
        !acc

let prepare_poly grids (s : Stencil.t) (poly : Polyform.t) =
  let groups = ref [] in
  let group_index (g, (m : Affine.t)) =
    let key = (g, Ivec.to_list m.Affine.scale) in
    match List.find_opt (fun (k, _) -> k = key) !groups with
    | Some (_, idx) -> idx
    | None ->
        let idx = List.length !groups in
        groups := (key, idx) :: !groups;
        idx
  in
  let read_delta (g, (m : Affine.t)) =
    Ivec.dot (Mesh.strides (Grids.find grids g)) m.Affine.offset
  in
  let tables = Array.make (Polyform.max_degree + 1) [] in
  List.iter
    (fun (m : Polyform.mono) ->
      let d = List.length m.Polyform.reads in
      let entry =
        ( m.Polyform.coeff,
          List.map (fun r -> (group_index r, read_delta r)) m.Polyform.reads )
      in
      tables.(d) <- entry :: tables.(d))
    poly.Polyform.monos;
  let mk_table d =
    let entries = List.rev tables.(d) in
    let count = List.length entries in
    let coeffs = Array.make (max count 1) 0. in
    let idx = Array.make (max (count * 2 * d) 1) 0 in
    List.iteri
      (fun i (c, reads) ->
        coeffs.(i) <- c;
        List.iteri
          (fun t (g, delta) ->
            idx.((i * 2 * d) + (2 * t)) <- g;
            idx.((i * 2 * d) + (2 * t) + 1) <- delta)
          reads)
      entries;
    (count, coeffs, idx)
  in
  let n1, c1, i1 = mk_table 1 in
  let n2, c2, i2 = mk_table 2 in
  let n3, c3, i3 = mk_table 3 in
  let n4, c4, i4 = mk_table 4 in
  let ngroups = List.length !groups in
  (* exactly [ngroups] entries: a zero-read (constant) stencil must yield
     an empty group table, not a dummy entry *)
  let gmeta =
    Array.init ngroups (fun _ -> (Float.Array.create 0, ([||] : int array), ([||] : int array)))
  in
  List.iter
    (fun ((g, scale), idx) ->
      let mesh = Grids.find grids g in
      gmeta.(idx) <-
        (Mesh.data mesh, Mesh.strides mesh, Array.of_list scale))
    !groups;
  let out_mesh = Grids.find grids s.Stencil.output in
  (* lockstep check: equal stride·scale vectors across all groups means the
     group counters would always coincide — use one shared counter and the
     factored evaluator *)
  let stride_scale (_, strides, scale) =
    Array.init (Array.length strides) (fun i -> strides.(i) * scale.(i))
  in
  let uniform =
    ngroups = 0
    ||
    let ref_vec = stride_scale gmeta.(0) in
    Array.for_all (fun gm -> Ivec.equal (stride_scale gm) ref_vec) gmeta
  in
  let eval_uniform =
    if uniform then begin
      let tap_of (g, (m : Affine.t)) =
        let mesh = Grids.find grids g in
        (Mesh.data mesh, Ivec.dot (Mesh.strides mesh) m.Affine.offset)
      in
      compile_factored ~tap_of (Polyform.factorize poly)
    end
    else fun _ -> nan
  in
  {
    gmeta;
    gdata = Array.map (fun (d, _, _) -> d) gmeta;
    uniform;
    eval_uniform;
    n1;
    c1;
    i1;
    n2;
    c2;
    i2;
    n3;
    c3;
    i3;
    n4;
    c4;
    i4;
    kconst = poly.Polyform.const;
    out_data = Mesh.data out_mesh;
    out_strides = Mesh.strides out_mesh;
    out_map = s.Stencil.out_map;
  }

(* Instantiate one tile of a prepared polynomial stencil: all geometry is
   computed here, once; the returned thunk only runs the loops.  The thunk
   owns its odometer buffers, so distinct tiles may run concurrently while
   one tile's thunk is reused across kernel invocations for free. *)
let instantiate_poly prep rect =
  let cnt = Domain.counts rect in
  let n = Ivec.dims cnt in
  let ngroups = Array.length prep.gmeta in
  let gdata = prep.gdata in
  (* per-tile geometry: group bases and per-axis increments *)
  let gbase = Array.make ngroups 0 in
  let ginc = Array.make_matrix ngroups n 0 in
  Array.iteri
    (fun g (_, strides, scale) ->
      let b = ref 0 in
      for i = 0 to n - 1 do
        b := !b + (strides.(i) * scale.(i) * rect.Domain.rlo.(i));
        ginc.(g).(i) <- strides.(i) * scale.(i) * rect.Domain.rstride.(i)
      done;
      gbase.(g) <- !b)
    prep.gmeta;
  let out_origin = Affine.apply prep.out_map rect.Domain.rlo in
  let out_base = Ivec.dot prep.out_strides out_origin in
  let out_inc =
    Array.init n (fun i ->
        prep.out_strides.(i)
        * prep.out_map.Affine.scale.(i)
        * rect.Domain.rstride.(i))
  in
  let inner = n - 1 in
  let inner_cnt = cnt.(inner) in
  let ginc_inner = Array.init ngroups (fun g -> ginc.(g).(inner)) in
  let out_inner_inc = out_inc.(inner) in
  let { n1; c1; i1; n2; c2; i2; n3; c3; i3; n4; c4; i4; kconst; out_data; _ }
      =
    prep
  in
  let uniform = prep.uniform in
  let outer_total = ref 1 in
  for i = 0 to inner - 1 do
    outer_total := !outer_total * cnt.(i)
  done;
  let outer_total = !outer_total in
  let oidx = Array.make (max inner 1) 0 in
  let bump () =
    let rec go i =
      if i >= 0 then begin
        oidx.(i) <- oidx.(i) + 1;
        if oidx.(i) >= cnt.(i) then begin
          oidx.(i) <- 0;
          go (i - 1)
        end
      end
    in
    go (inner - 1)
  in
  if uniform then begin
    (* single shared counter; degree-1-only polynomials additionally get an
       unrolled arity-specialised evaluator *)
    let inc0 = if ngroups = 0 then out_inc else ginc.(0) in
    let base0 = if ngroups = 0 then out_base else gbase.(0) in
    let inc0_inner = if ngroups = 0 then out_inner_inc else ginc_inner.(0) in
    let eval = prep.eval_uniform in
    fun () ->
    Array.fill oidx 0 (Array.length oidx) 0;
    for _row = 0 to outer_total - 1 do
      let pos = ref base0 and out_flat = ref out_base in
      for i = 0 to inner - 1 do
        pos := !pos + (oidx.(i) * inc0.(i));
        out_flat := !out_flat + (oidx.(i) * out_inc.(i))
      done;
      for _c = 0 to inner_cnt - 1 do
        Float.Array.unsafe_set out_data !out_flat (eval !pos);
        pos := !pos + inc0_inner;
        out_flat := !out_flat + out_inner_inc
      done;
      bump ()
    done
  end
  else begin
    let gpos = Array.make (max ngroups 1) 0 in
    let rd g d =
      Float.Array.unsafe_get
        (Array.unsafe_get gdata g)
        (Array.unsafe_get gpos g + d)
    in
    fun () ->
    Array.fill oidx 0 (Array.length oidx) 0;
    for _row = 0 to outer_total - 1 do
      for g = 0 to ngroups - 1 do
        let flat = ref gbase.(g) in
        let inc = ginc.(g) in
        for i = 0 to inner - 1 do
          flat := !flat + (oidx.(i) * inc.(i))
        done;
        gpos.(g) <- !flat
      done;
      let out_flat = ref out_base in
      for i = 0 to inner - 1 do
        out_flat := !out_flat + (oidx.(i) * out_inc.(i))
      done;
      for _c = 0 to inner_cnt - 1 do
        let acc = ref kconst in
        for m = 0 to n1 - 1 do
          let b = m * 2 in
          acc :=
            !acc
            +. (Array.unsafe_get c1 m
               *. rd (Array.unsafe_get i1 b) (Array.unsafe_get i1 (b + 1)))
        done;
        for m = 0 to n2 - 1 do
          let b = m * 4 in
          acc :=
            !acc
            +. Array.unsafe_get c2 m
               *. rd (Array.unsafe_get i2 b) (Array.unsafe_get i2 (b + 1))
               *. rd
                    (Array.unsafe_get i2 (b + 2))
                    (Array.unsafe_get i2 (b + 3))
        done;
        for m = 0 to n3 - 1 do
          let b = m * 6 in
          acc :=
            !acc
            +. Array.unsafe_get c3 m
               *. rd (Array.unsafe_get i3 b) (Array.unsafe_get i3 (b + 1))
               *. rd
                    (Array.unsafe_get i3 (b + 2))
                    (Array.unsafe_get i3 (b + 3))
               *. rd
                    (Array.unsafe_get i3 (b + 4))
                    (Array.unsafe_get i3 (b + 5))
        done;
        for m = 0 to n4 - 1 do
          let b = m * 8 in
          acc :=
            !acc
            +. Array.unsafe_get c4 m
               *. rd (Array.unsafe_get i4 b) (Array.unsafe_get i4 (b + 1))
               *. rd
                    (Array.unsafe_get i4 (b + 2))
                    (Array.unsafe_get i4 (b + 3))
               *. rd
                    (Array.unsafe_get i4 (b + 4))
                    (Array.unsafe_get i4 (b + 5))
               *. rd
                    (Array.unsafe_get i4 (b + 6))
                    (Array.unsafe_get i4 (b + 7))
        done;
        Float.Array.unsafe_set out_data !out_flat !acc;
        out_flat := !out_flat + out_inner_inc;
        for g = 0 to ngroups - 1 do
          gpos.(g) <- gpos.(g) + Array.unsafe_get ginc_inner g
        done
      done;
      bump ()
    done
  end

let nop () = ()

let prepare_compiled grids ~params (s : Stencil.t) =
  match Polyform.of_expr ~params s.Stencil.expr with
  | Some poly ->
      let prep = prepare_poly grids s poly in
      fun rect ->
        if Domain.is_empty rect then nop else instantiate_poly prep rect
  | None ->
      fun rect () ->
        if not (Domain.is_empty rect) then
          run_rect_closure grids ~params s rect

let run_rect_compiled grids ~params s rect =
  (prepare_compiled grids ~params s) rect ()

let validate_stencil grids ~shape (s : Stencil.t) =
  let n = Ivec.dims shape in
  List.iter
    (fun g ->
      let mesh = Grids.find grids g in
      if Mesh.dims mesh <> n then
        invalid_arg
          (Printf.sprintf
             "stencil %s: grid %S has rank %d but iteration shape has rank %d"
             s.Stencil.label g (Mesh.dims mesh) n))
    (Stencil.grids s);
  let grid_shape g = Mesh.shape (Grids.find grids g) in
  match Sf_analysis.Footprint.check_in_bounds ~shape ~grid_shape s with
  | Ok () -> ()
  | Error msg -> invalid_arg msg
