type schedule = Greedy_waves | Dag_levels

type t = {
  workers : int;
  tile : int list option;
  chunks : int;
  tall_skinny : int * int;
  multicolor : bool;
  schedule : schedule;
  validate : bool;
  fuse : bool;
  dce : dce;
}

and dce = No_dce | Dce of string list

let default =
  {
    workers = 1;
    tile = None;
    chunks = 8;
    tall_skinny = (8, 64);
    multicolor = false;
    schedule = Greedy_waves;
    validate = true;
    fuse = false;
    dce = No_dce;
  }

let with_workers workers t = { t with workers }
