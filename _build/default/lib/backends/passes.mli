(** Whole-group optimisation passes run by the JIT before lowering
    (paper §III: "this technique ... can also be used for eliminating dead
    stencils and reordering computations"; §VII schedules fusion as future
    work — implemented here).

    Both passes are driven entirely by the Diophantine dependence analysis
    and are semantics-preserving for the grids a caller observes. *)

open Sf_util
open Snowflake

val fuse_pass :
  shape:Ivec.t -> live:string list option -> Group.t -> Group.t
(** Greedily fuse adjacent producer/consumer pairs when
    {!Sf_analysis.Schedule.can_fuse} holds and dropping the producer's
    write is unobservable: its output grid is never read by a later
    stencil and either equals the consumer's output or is known dead
    ([live] given and not containing it).  With [live = None] only
    same-output fusion is performed. *)

val optimize : Config.t -> shape:Ivec.t -> Group.t -> Group.t
(** DCE (when configured) followed by fusion (when configured). *)
