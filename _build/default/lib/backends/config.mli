(** Compilation options shared by the micro-compilers.

    These correspond to the tuning knobs the paper exposes when [compile] is
    called: thread count, tile sizes, multicolor reordering, and the
    barrier-placement strategy. *)

type schedule = Greedy_waves | Dag_levels

type t = {
  workers : int;  (** parallel degree (like OMP_NUM_THREADS / CUs) *)
  tile : int list option;
      (** explicit OpenMP tile sizes (lattice points per axis); [None]
          falls back to outer-axis chunking into [chunks] subtasks *)
  chunks : int;  (** subtasks per stencil when [tile = None] *)
  tall_skinny : int * int;  (** OpenCL 2-D tile (rows, cols) *)
  multicolor : bool;
      (** interleave the tiles of a domain-union (colored) stencil
          spatially instead of color-by-color *)
  schedule : schedule;
  validate : bool;  (** bounds/shape checks at kernel invocation *)
  fuse : bool;
      (** greedily fuse consecutive stencils when the analysis proves it
          legal (producer consumed at offset zero over an identical
          domain) *)
  dce : dce;
      (** dead-stencil elimination before scheduling *)
}

and dce = No_dce | Dce of string list  (** live output grids *)

val default : t
(** Sequential-friendly defaults: [workers = 1], no explicit tile,
    [chunks = 8], tall-skinny [8 x 64], multicolor off, greedy waves,
    validation on, no fusion, no DCE. *)

val with_workers : int -> t -> t
