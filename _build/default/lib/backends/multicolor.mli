(** Multicolor reordering (paper §IV.A).

    A colored stencil's domain is a union of strided rects; executing them
    color-after-color streams the mesh through memory once per color.  The
    reordering transform interleaves the tiles of all colors in spatial
    (row-major origin) order so that nearby points of different colors are
    visited close together in time, cutting slow-memory re-reads.  It is
    legal exactly when the union's write lattices are pairwise disjoint,
    which the analysis checks before the backend applies it. *)

open Snowflake

val interleave : Domain.resolved list list -> Domain.resolved list
(** [interleave tiles_per_color] merges the per-color tile lists into one
    list sorted by tile origin (row-major).  The relative order of tiles
    within one color is preserved. *)
