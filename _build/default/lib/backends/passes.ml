open Snowflake
open Sf_analysis

let read_later output rest =
  List.exists (fun s -> List.mem output (Stencil.grids_read s)) rest

let fuse_pass ~shape ~live group =
  let rec go = function
    | s1 :: s2 :: rest
      when Schedule.can_fuse ~shape s1 s2
           && (not (read_later s1.Stencil.output rest))
           &&
           (String.equal s1.Stencil.output s2.Stencil.output
           ||
           match live with
           | None -> false
           | Some live -> not (List.mem s1.Stencil.output live)) ->
        (* the fused stencil may itself fuse with what follows *)
        go (Schedule.fuse s1 s2 :: rest)
    | s :: rest -> s :: go rest
    | [] -> []
  in
  let fused = go (Group.stencils group) in
  if List.length fused = Group.length group then group
  else Group.make ~label:(group.Group.label ^ "_fused") fused

let optimize (cfg : Config.t) ~shape group =
  let group, live =
    match cfg.Config.dce with
    | Config.No_dce -> (group, None)
    | Config.Dce live -> (Schedule.eliminate_dead ~shape ~live group, Some live)
  in
  if cfg.Config.fuse then fuse_pass ~shape ~live group else group
