type t = { workers : int }

let create ~workers = { workers = max 1 workers }
let workers t = t.workers
let sequential = { workers = 1 }

let run_tasks t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if t.workers <= 1 || n = 1 then Array.iter (fun task -> task ()) tasks
  else begin
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && Atomic.get failure = None then begin
          (try tasks.(i) () with
          | e ->
              (* keep the first failure; racing writers may overwrite, which
                 is acceptable — any failure aborts the join *)
              Atomic.set failure (Some e));
          loop ()
        end
      in
      loop ()
    in
    let spawned =
      Array.init
        (min (t.workers - 1) (n - 1))
        (fun _ -> Domain.spawn worker)
    in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get failure with
    | Some e -> raise e
    | None -> ()
  end

let parallel_for t n f =
  run_tasks t (Array.init n (fun i () -> f i))
