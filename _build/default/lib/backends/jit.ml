open Sf_util
open Snowflake

type backend = Interp | Compiled | Openmp | Opencl | Custom of string

let backend_name = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Openmp -> "openmp"
  | Opencl -> "opencl"
  | Custom name -> name

let builtin_names = [ "interp"; "compiled"; "openmp"; "opencl" ]

let registry :
    (string, Config.t -> shape:Ivec.t -> Group.t -> Kernel.t) Hashtbl.t =
  Hashtbl.create 8

let backend_of_string = function
  | "interp" -> Some Interp
  | "compiled" -> Some Compiled
  | "openmp" -> Some Openmp
  | "opencl" -> Some Opencl
  | name -> if Hashtbl.mem registry name then Some (Custom name) else None

let all_backends = [ Interp; Compiled; Openmp; Opencl ]

let registered_backends () =
  Hashtbl.fold (fun name _ acc -> name :: acc) registry []
  |> List.sort String.compare

type key = {
  backend : backend;
  shape : int list;
  group_hash : int;
  config : Config.t;
}

let cache : (key, Kernel.t) Hashtbl.t = Hashtbl.create 64
let hits = ref 0
let misses = ref 0

let compile ?(config = Config.default) backend ~shape group =
  let key =
    {
      backend;
      shape = Ivec.to_list shape;
      group_hash = Group.hash group;
      config;
    }
  in
  match Hashtbl.find_opt cache key with
  | Some kernel ->
      incr hits;
      kernel
  | None ->
      incr misses;
      let group = Passes.optimize config ~shape group in
      let kernel =
        match backend with
        | Interp -> Serial_backend.compile_interp config ~shape group
        | Compiled -> Serial_backend.compile_compiled config ~shape group
        | Openmp -> Openmp_backend.compile config ~shape group
        | Opencl -> Opencl_backend.compile config ~shape group
        | Custom name -> (
            match Hashtbl.find_opt registry name with
            | Some compiler -> compiler config ~shape group
            | None ->
                invalid_arg
                  (Printf.sprintf "Jit.compile: unknown custom backend %S"
                     name))
      in
      Hashtbl.replace cache key kernel;
      kernel

let compile_stencil ?config backend ~shape stencil =
  compile ?config backend ~shape
    (Group.make ~label:stencil.Stencil.label [ stencil ])

let register_backend ~name compiler =
  if List.mem name builtin_names then
    invalid_arg
      (Printf.sprintf "Jit.register_backend: %S is a built-in backend" name);
  if Hashtbl.mem registry name then Hashtbl.reset cache;
  Hashtbl.replace registry name compiler

let cache_stats () = (!hits, !misses)

let clear_cache () =
  Hashtbl.reset cache;
  hits := 0;
  misses := 0
