lib/analysis/schedule.ml: Affine Array Dependence Domain Expr Footprint Format Fun Group List Snowflake Stencil String
