lib/analysis/dioph.ml: List Option
