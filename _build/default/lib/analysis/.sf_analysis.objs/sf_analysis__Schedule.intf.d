lib/analysis/schedule.mli: Dependence Format Group Ivec Sf_util Snowflake Stencil
