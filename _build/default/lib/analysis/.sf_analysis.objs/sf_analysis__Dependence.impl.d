lib/analysis/dependence.ml: Affine Domain Footprint Format List Snowflake Stencil String
