lib/analysis/validate.mli: Format Group Ivec Sf_util Snowflake
