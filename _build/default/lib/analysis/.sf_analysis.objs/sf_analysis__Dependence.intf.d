lib/analysis/dependence.mli: Format Ivec Sf_util Snowflake Stencil
