lib/analysis/validate.ml: Dependence Expr Footprint Format Group Ivec List Sf_util Snowflake Stencil String
