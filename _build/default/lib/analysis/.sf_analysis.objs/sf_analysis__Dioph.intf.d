lib/analysis/dioph.mli:
