lib/analysis/footprint.mli: Affine Dioph Domain Ivec Sf_util Snowflake Stencil
