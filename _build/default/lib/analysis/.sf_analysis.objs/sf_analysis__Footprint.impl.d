lib/analysis/footprint.ml: Affine Array Dioph Domain Format Ivec List Map Printf Sf_util Snowflake Stencil String
