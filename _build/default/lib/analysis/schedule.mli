(** Dependence DAGs and barrier placement over stencil groups (paper §IV.A).

    The OpenMP micro-compiler consumes the output of this module: a list of
    waves (maximal barrier-free batches, formed greedily exactly as the
    paper describes) and, for task farming, the full dependence DAG. *)

open Sf_util
open Snowflake

type edge = { src : int; dst : int; kinds : Dependence.kind list }
(** Indices into the group's stencil list; [src] must complete before
    [dst]. *)

type dag = { group : Group.t; edges : edge list }

val build_dag : shape:Ivec.t -> Group.t -> dag
(** All pairwise dependences [i < j] with a conflict. *)

val predecessors : dag -> int -> int list
val successors : dag -> int -> int list

val greedy_waves : shape:Ivec.t -> Group.t -> int list list
(** The paper's greedy grouping: sweep the stencils in program order,
    accumulating a wave; emit a barrier (start a new wave) only when the
    next stencil depends on a stencil already in the current wave.  Each
    wave lists stencil indices in program order; concatenating the waves
    yields [0 .. n-1]. *)

val dag_waves : dag -> int list list
(** Topological levels of the DAG (longest-path layering) — at least as
    parallel as {!greedy_waves}; used by the task-farming executor. *)

val dead_stencils : shape:Ivec.t -> live:string list -> Group.t -> int list
(** Conservative dead-stencil detection (paper §VII future work, implemented
    here): stencil [i] is dead when its output grid is not in [live] and no
    later stencil reads a lattice intersecting [i]'s writes.  Returned in
    increasing order. *)

val eliminate_dead : shape:Ivec.t -> live:string list -> Group.t -> Group.t
(** Drops dead stencils, iterating to a fixed point (removing one stencil
    can kill another).  Raises [Invalid_argument] if everything is dead. *)

val can_fuse : shape:Ivec.t -> Stencil.t -> Stencil.t -> bool
(** Legality of point-wise fusion of two consecutive stencils: identical
    domains, the second reads the first's output only at offset zero, the
    first does not read the second's output, and both domains' unions are
    self-disjoint.  Sound but not complete. *)

val fuse : Stencil.t -> Stencil.t -> Stencil.t
(** Point-wise fusion: substitute the first stencil's expression for
    offset-zero reads of its output inside the second.  Only meaningful when
    {!can_fuse} holds and both write the same grid; the fused stencil writes
    the second's output. *)

val pp_waves : Format.formatter -> int list list -> unit
