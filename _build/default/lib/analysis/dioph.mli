(** Linear Diophantine machinery.

    The paper's dependence analysis reduces "do two strided finite domains
    share a point?" to systems of linear Diophantine equations, solved with
    the extended Euclidean algorithm and then checked against the finite
    bounds (paper §III.A).  This module is that solver: exact, integer-only,
    and total. *)

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, x, y)] with [g = gcd a b >= 0] and [a*x + b*y = g].
    [egcd 0 0 = (0, 0, 0)]. *)

val gcd : int -> int -> int
val lcm : int -> int -> int
(** [lcm 0 x = 0]. *)

val solve2 : a:int -> b:int -> c:int -> (int * int) option
(** One integer solution of [a*x + b*y = c], or [None] when [c] is not a
    multiple of [gcd a b] (including the degenerate [a = b = 0, c <> 0]). *)

(** A finite arithmetic progression [{ start + step*k | 0 <= k < count }].
    [step] must be positive; [count] may be zero (empty). *)
type progression = { start : int; step : int; count : int }

val progression : start:int -> step:int -> count:int -> progression
(** Raises [Invalid_argument] if [step <= 0] or [count < 0]. *)

val last : progression -> int option
(** Largest element, [None] when empty. *)

val mem : progression -> int -> bool

val intersect : progression -> progression -> progression option
(** Exact intersection of two finite progressions — itself a progression
    with [step = lcm] (via CRT on the starts), or [None] when empty.  This
    is the 1-D core of the finite-domain analysis: unlike an infinite-domain
    analysis, two progressions with compatible residues but disjoint ranges
    correctly report no conflict. *)

val disjoint : progression -> progression -> bool

val elements : progression -> int list
(** All members; intended for tests on small progressions. *)
