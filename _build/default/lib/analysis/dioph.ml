let rec egcd a b =
  if b = 0 then ((if a < 0 then -a else a), (if a < 0 then -1 else if a = 0 then 0 else 1), 0)
  else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))

let gcd a b =
  let g, _, _ = egcd a b in
  g

let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

let solve2 ~a ~b ~c =
  let g, x, y = egcd a b in
  if g = 0 then if c = 0 then Some (0, 0) else None
  else if c mod g <> 0 then None
  else
    let k = c / g in
    Some (x * k, y * k)

type progression = { start : int; step : int; count : int }

let progression ~start ~step ~count =
  if step <= 0 then invalid_arg "Dioph.progression: step must be positive";
  if count < 0 then invalid_arg "Dioph.progression: negative count";
  { start; step; count }

let last p = if p.count = 0 then None else Some (p.start + (p.step * (p.count - 1)))

let mem p x =
  p.count > 0
  && x >= p.start
  && x <= p.start + (p.step * (p.count - 1))
  && (x - p.start) mod p.step = 0

(* Integer ceiling division, correct for negative numerators. *)
let ceil_div a b =
  if a >= 0 then (a + b - 1) / b else -((-a) / b)

let intersect p1 p2 =
  match (last p1, last p2) with
  | None, _ | _, None -> None
  | Some last1, Some last2 ->
      let c = p2.start - p1.start in
      let g, x, _ = egcd p1.step p2.step in
      if c mod g <> 0 then None
      else begin
        let step = lcm p1.step p2.step in
        (* x_common ≡ p1.start (mod p1.step) and ≡ p2.start (mod p2.step) *)
        let x_common = p1.start + (p1.step * (x * (c / g))) in
        let lo = max p1.start p2.start in
        let hi = min last1 last2 in
        if hi < lo then None
        else begin
          let start = x_common + (step * ceil_div (lo - x_common) step) in
          if start > hi then None
          else Some { start; step; count = ((hi - start) / step) + 1 }
        end
      end

let disjoint p1 p2 = Option.is_none (intersect p1 p2)

let elements p = List.init p.count (fun k -> p.start + (p.step * k))
