open Sf_util
open Snowflake

type issue =
  | Out_of_bounds of { stencil : string; detail : string }
  | Overlapping_union of { stencil : string }
  | Sequential_in_place of { stencil : string; offsets : Ivec.t list }
  | Unbound_param of { stencil : string; param : string }

let pp_issue ppf = function
  | Out_of_bounds { stencil; detail } ->
      Format.fprintf ppf "error: %s: %s" stencil detail
  | Overlapping_union { stencil } ->
      Format.fprintf ppf
        "error: %s: domain union writes overlapping cells" stencil
  | Sequential_in_place { stencil; offsets } ->
      Format.fprintf ppf
        "note: %s: loop-carried dependence at offsets %s (will run \
         sequentially)"
        stencil
        (String.concat ", " (List.map Ivec.to_string offsets))
  | Unbound_param { stencil; param } ->
      Format.fprintf ppf "error: %s: parameter %S is not bound" stencil param

let issue_to_string i = Format.asprintf "%a" pp_issue i

let is_error = function
  | Out_of_bounds _ | Unbound_param _ -> true
  | Overlapping_union _ | Sequential_in_place _ -> false

let stencil_issues ~shape ~grid_shape ~params (s : Stencil.t) =
  let acc = ref [] in
  (match Footprint.check_in_bounds ~shape ~grid_shape s with
  | Ok () -> ()
  | Error detail ->
      acc := Out_of_bounds { stencil = s.Stencil.label; detail } :: !acc);
  if not (Footprint.union_self_disjoint ~shape s) then
    acc := Overlapping_union { stencil = s.Stencil.label } :: !acc;
  (match Dependence.self_conflicts ~shape s with
  | [] -> ()
  | offsets ->
      acc :=
        Sequential_in_place { stencil = s.Stencil.label; offsets } :: !acc);
  (match params with
  | None -> ()
  | Some bound ->
      List.iter
        (fun p ->
          if not (List.mem p bound) then
            acc := Unbound_param { stencil = s.Stencil.label; param = p } :: !acc)
        (Expr.params s.Stencil.expr));
  List.rev !acc

let group ~shape ~grid_shape ?params g =
  List.concat_map
    (stencil_issues ~shape ~grid_shape ~params)
    (Group.stencils g)
