open Snowflake

type edge = { src : int; dst : int; kinds : Dependence.kind list }
type dag = { group : Group.t; edges : edge list }

let build_dag ~shape group =
  let stencils = Array.of_list (Group.stencils group) in
  let n = Array.length stencils in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match
        Dependence.conflicts ~shape ~before:stencils.(i) ~after:stencils.(j)
      with
      | [] -> ()
      | kinds -> edges := { src = i; dst = j; kinds } :: !edges
    done
  done;
  { group; edges = List.rev !edges }

let predecessors dag i =
  List.filter_map (fun e -> if e.dst = i then Some e.src else None) dag.edges

let successors dag i =
  List.filter_map (fun e -> if e.src = i then Some e.dst else None) dag.edges

let greedy_waves ~shape group =
  let stencils = Array.of_list (Group.stencils group) in
  let n = Array.length stencils in
  let waves = ref [] in
  let current = ref [] in
  for j = 0 to n - 1 do
    let blocked =
      List.exists
        (fun i ->
          Dependence.depends ~shape ~before:stencils.(i) ~after:stencils.(j))
        !current
    in
    if blocked then begin
      waves := List.rev !current :: !waves;
      current := [ j ]
    end
    else current := j :: !current
  done;
  if !current <> [] then waves := List.rev !current :: !waves;
  List.rev !waves

let dag_waves dag =
  let n = Group.length dag.group in
  let level = Array.make n 0 in
  (* edges go from lower to higher index, so one forward pass suffices *)
  List.iter
    (fun e -> level.(e.dst) <- max level.(e.dst) (level.(e.src) + 1))
    (List.sort (fun a b -> compare (a.src, a.dst) (b.src, b.dst)) dag.edges);
  let max_level = Array.fold_left max 0 level in
  List.init (max_level + 1) (fun l ->
      List.filter (fun i -> level.(i) = l) (List.init n Fun.id))

let dead_indices_once ~shape group ~live =
  let stencils = Array.of_list (Group.stencils group) in
  let n = Array.length stencils in
  let dead = ref [] in
  for i = 0 to n - 1 do
    let s = stencils.(i) in
    let out = s.Stencil.output in
    if not (List.mem out live) then begin
      let writes = snd (Footprint.write_footprint ~shape s) in
      let read_later =
        let rec check j =
          j < n
          &&
          let reads = Footprint.read_footprint ~shape stencils.(j) in
          (match List.assoc_opt out reads with
          | Some ls -> Footprint.lattice_lists_intersect writes ls
          | None -> false)
          || check (j + 1)
        in
        check (i + 1)
      in
      if not read_later then dead := i :: !dead
    end
  done;
  List.rev !dead

let dead_stencils ~shape ~live group = dead_indices_once ~shape group ~live

let eliminate_dead ~shape ~live group =
  let rec fixpoint g =
    match dead_indices_once ~shape g ~live with
    | [] -> g
    | dead ->
        let kept =
          List.filteri (fun i _ -> not (List.mem i dead)) (Group.stencils g)
        in
        if kept = [] then
          invalid_arg "Schedule.eliminate_dead: every stencil is dead"
        else fixpoint (Group.make ~label:(g.Group.label ^ "_dce") kept)
  in
  fixpoint group

let can_fuse ~shape (s1 : Stencil.t) (s2 : Stencil.t) =
  Domain.equal s1.Stencil.domain s2.Stencil.domain
  && Affine.is_identity s1.Stencil.out_map
  && Footprint.union_self_disjoint ~shape s1
  && List.for_all
       (fun (g, m) ->
         (not (String.equal g s1.Stencil.output)) || Affine.is_identity m)
       (Stencil.reads s2)
  && not (List.mem s2.Stencil.output (Stencil.grids_read s1))

let fuse (s1 : Stencil.t) (s2 : Stencil.t) =
  let rec subst = function
    | Expr.Read (g, m)
      when String.equal g s1.Stencil.output && Affine.is_identity m ->
        s1.Stencil.expr
    | (Expr.Const _ | Expr.Param _ | Expr.Read _) as e -> e
    | Expr.Neg a -> Expr.Neg (subst a)
    | Expr.Add (a, b) -> Expr.Add (subst a, subst b)
    | Expr.Sub (a, b) -> Expr.Sub (subst a, subst b)
    | Expr.Mul (a, b) -> Expr.Mul (subst a, subst b)
    | Expr.Div (a, b) -> Expr.Div (subst a, subst b)
  in
  Stencil.make
    ~label:(s1.Stencil.label ^ "*" ^ s2.Stencil.label)
    ~output:s2.Stencil.output
    ~expr:(subst s2.Stencil.expr)
    ~domain:s2.Stencil.domain ()

let pp_waves ppf waves =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun w indices ->
      Format.fprintf ppf "wave %d: %a@," w
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        indices)
    waves;
  Format.fprintf ppf "@]"
