type t = (string, Mesh.t) Hashtbl.t

let create () = Hashtbl.create 16

let of_list bindings =
  let t = create () in
  List.iter (fun (name, mesh) -> Hashtbl.replace t name mesh) bindings;
  t

let add t name mesh = Hashtbl.replace t name mesh

let find t name =
  match Hashtbl.find_opt t name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Grids.find: unbound grid %S" name)

let find_opt = Hashtbl.find_opt
let mem = Hashtbl.mem

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t []
  |> List.sort String.compare

let copy t =
  let fresh = create () in
  Hashtbl.iter (fun name mesh -> Hashtbl.replace fresh name (Mesh.copy mesh)) t;
  fresh
