lib/mesh/mesh.mli: Format Ivec Sf_util
