lib/mesh/grids.ml: Hashtbl List Mesh Printf String
