lib/mesh/grids.mli: Mesh
