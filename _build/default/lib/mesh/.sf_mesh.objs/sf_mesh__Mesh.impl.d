lib/mesh/mesh.ml: Array Float Format Ivec Printf Random Sf_util
