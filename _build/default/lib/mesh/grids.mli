(** Named collections of meshes.

    Snowflake expressions refer to grids by name ("mesh", "rhs", "beta_x",
    ...); a [Grids.t] is the runtime binding of those names to mesh storage,
    passed to every compiled kernel at call time. *)

type t

val create : unit -> t
val of_list : (string * Mesh.t) list -> t

val add : t -> string -> Mesh.t -> unit
(** Binds (or rebinds) a name. *)

val find : t -> string -> Mesh.t
(** Raises [Not_found] with a descriptive [Invalid_argument] if unbound. *)

val find_opt : t -> string -> Mesh.t option
val mem : t -> string -> bool
val names : t -> string list
(** Bound names in an unspecified but deterministic order. *)

val copy : t -> t
(** Deep copy: every mesh is copied too, so kernels can be replayed. *)
