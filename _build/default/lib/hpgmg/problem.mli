(** Manufactured problems for verification (the role of HPGMG's built-in
    problem setup).

    The continuous problem is −∇·(β∇u) = f on the unit cube with
    homogeneous Dirichlet boundaries. *)

val exact_sine : float -> float -> float -> float
(** u(x,y,z) = sin(πx)·sin(πy)·sin(πz) — zero on the boundary. *)

val rhs_sine : float -> float -> float -> float
(** f = −Δu = 3π²·u for the β ≡ 1 (Poisson) case. *)

val beta_smooth : float -> float -> float -> float
(** A strictly positive, smoothly varying coefficient
    1 + ½·sin(2πx)·sin(2πy)·sin(2πz)·0.9 used for the variable-coefficient
    experiments (heterogeneous medium). *)

val setup_poisson : Level.t -> unit
(** β ≡ 1, f = {!rhs_sine} at cell centres, u = 0. *)

val setup_variable : seed:int -> Level.t -> unit
(** β = {!beta_smooth}, f = deterministic pseudo-random interior values in
    [-1, 1], u = 0.  Used when only convergence factors (not discretisation
    error) are checked. *)
