(** Hand-written 3-D kernels: the stand-in for hand-optimized HPGMG.

    These play the role of the paper's comparison target — straight-line
    OCaml with precomputed flat strides, fused index arithmetic and no DSL
    machinery.  Semantically each function matches the corresponding
    Snowflake group bit-for-bit (asserted by the test suite), so the
    benchmark comparison isolates the cost of the generated code, exactly
    as Figures 7–9 do. *)

open Sf_mesh

val apply_boundaries : Level.t -> Mesh.t -> unit
(** Linear Dirichlet ghost exchange on all six faces. *)

val laplacian_cc : Level.t -> out:Mesh.t -> input:Mesh.t -> unit
(** out = A_cc input (7-point constant-coefficient, boundaries applied
    first). *)

val jacobi_cc : Level.t -> unit
(** One weighted-Jacobi sweep with ping-pong through [tmp], boundaries
    applied first: matches [Operators.jacobi_smooth]. *)

val smooth_gsrb : Level.t -> unit
(** boundaries / red / boundaries / black, variable-coefficient: matches
    [Operators.gsrb_smooth]. *)

val residual_vc : Level.t -> unit
(** res = f − A_vc u, boundaries applied first. *)

val restrict_pc : coarse:Level.t -> src:Mesh.t -> unit
(** Piecewise-constant restriction of a fine mesh into the coarse [f]. *)

val interpolate_pc : coarse:Level.t -> fine:Level.t -> unit
(** Piecewise-constant interpolation-and-correct of coarse [u] into fine
    [u]. *)

val init_dinv : Level.t -> unit

(** {2 A complete baseline solver} — mirrors [Mg] wired to the hand
    kernels. *)

type t = { levels : Level.t array; smooths : int; coarse_iters : int }

val create : ?smooths:int -> ?coarse_iters:int -> ?coarsest_n:int -> n:int ->
  unit -> t

val finest : t -> Level.t
val set_beta : t -> (float -> float -> float -> float) -> unit
val vcycle : t -> unit
val residual_norm : t -> float
val solve : ?cycles:int -> t -> float array
val dof : t -> int
