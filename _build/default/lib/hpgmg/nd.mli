(** Dimension-generic multigrid building blocks.

    The Snowflake language is rank-polymorphic; this module provides the
    HPGMG operator set for any dimensionality — 1-D and 2-D solvers are
    useful in their own right (the paper's running example, Fig. 4, is
    2-D) and the 3-D instantiation is what {!Operators} re-exports.

    Grid-name conventions match the 3-D module: ["u"], ["f"], ["res"],
    ["tmp"], ["dinv"], and face coefficients ["beta_x"], ["beta_y"],
    ["beta_z"], ["beta_w"], then ["beta_a4"], ... for higher axes. *)

open Sf_util
open Sf_mesh
open Snowflake

val axis_name : int -> string
(** "x", "y", "z", "w", then "a4", "a5", ... *)

val beta_name : int -> string

(** {2 Operators} *)

val interior : dims:int -> Domain.t
val boundaries : dims:int -> grid:string -> Stencil.t list
(** 2·dims linear-Dirichlet face stencils. *)

val cc_apply_expr : dims:int -> string -> Expr.t
(** A_cc u = inv_h2 · (2·dims·u(0) − Σ face neighbours). *)

val laplacian_cc : dims:int -> out:string -> input:string -> Stencil.t
val residual_cc : dims:int -> Stencil.t
val jacobi_cc : dims:int -> out:string -> input:string -> Stencil.t
val copy_interior : dims:int -> out:string -> input:string -> Stencil.t
val jacobi_smooth : dims:int -> Group.t

val vc_apply_expr : dims:int -> string -> Expr.t
val residual_vc : dims:int -> Stencil.t
val dinv_setup : dims:int -> Stencil.t
val gsrb_color : dims:int -> color:int -> Stencil.t
val gsrb_smooth : dims:int -> Group.t

val restriction : dims:int -> Stencil.t
(** Piecewise-constant 2^dims-cell average, ["fine_res"] → ["coarse_f"]. *)

val interpolation : dims:int -> Stencil.t list
(** Piecewise-constant correction, 2^dims parity stencils,
    ["coarse_u"] → ["fine_u"]. *)

(** {2 Levels} *)

module Level : sig
  type t = { n : int; dims : int; shape : Ivec.t; h : float; grids : Grids.t }

  val create : dims:int -> n:int -> t
  val params : t -> (string * float) list
  val u : t -> Mesh.t
  val f : t -> Mesh.t
  val res : t -> Mesh.t
  val dof : t -> int
  val cell_center : t -> Ivec.t -> float array
  val iter_interior : t -> (Ivec.t -> unit) -> unit
  val fill_interior : Mesh.t -> t -> (float array -> float) -> unit
  (** The callback receives physical cell-centre coordinates. *)

  val set_beta : t -> (float array -> float) -> unit
  val interior_norm_l2 : t -> Mesh.t -> float
  val error_vs : t -> Mesh.t -> (float array -> float) -> float
end

(** {2 A dimension-generic V-cycle solver} *)

module Solver : sig
  type t = {
    levels : Level.t array;
    backend : Sf_backends.Jit.backend;
    smooths : int;
    coarse_iters : int;
  }

  val create :
    ?backend:Sf_backends.Jit.backend ->
    ?smooths:int ->
    ?coarsest_n:int ->
    ?coarse_iters:int ->
    dims:int ->
    n:int ->
    unit ->
    t

  val finest : t -> Level.t
  val set_beta : t -> (float array -> float) -> unit
  val vcycle : t -> unit
  val residual_norm : t -> float
  val solve : ?cycles:int -> t -> float array
end

(** {2 Manufactured problem, any dimension} *)

val exact_sine : float array -> float
(** Π sin(π xᵢ). *)

val rhs_sine : dims:int -> float array -> float
(** dims·π²·{!exact_sine} — the Poisson right-hand side. *)
