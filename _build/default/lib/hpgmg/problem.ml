open Sf_mesh

let pi = 4. *. atan 1.
let exact_sine x y z = sin (pi *. x) *. sin (pi *. y) *. sin (pi *. z)
let rhs_sine x y z = 3. *. pi *. pi *. exact_sine x y z

let beta_smooth x y z =
  1. +. (0.45 *. sin (2. *. pi *. x) *. sin (2. *. pi *. y) *. sin (2. *. pi *. z))

let setup_poisson (level : Level.t) =
  Level.set_beta level (fun _ _ _ -> 1.);
  Mesh.fill (Level.u level) 0.;
  Mesh.fill (Level.f level) 0.;
  Level.fill_interior (Level.f level) level rhs_sine

let setup_variable ~seed (level : Level.t) =
  Level.set_beta level beta_smooth;
  Mesh.fill (Level.u level) 0.;
  let st = Random.State.make [| seed |] in
  Mesh.fill (Level.f level) 0.;
  Level.fill_interior (Level.f level) level (fun _ _ _ ->
      Random.State.float st 2. -. 1.)
