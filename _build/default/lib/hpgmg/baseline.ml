open Sf_mesh

(* All kernels address meshes through precomputed flat strides:
   idx(i,j,k) = i*sx + j*sy + k with sy = n+2 and sx = (n+2)².  Loops are
   written k-innermost (unit stride) with the index carried incrementally —
   the shape a performance programmer would hand-write. *)

let strides (level : Level.t) =
  let e = level.Level.n + 2 in
  (e * e, e)

let apply_boundaries (level : Level.t) mesh =
  let n = level.Level.n in
  let sx, sy = strides level in
  let d = Mesh.data mesh in
  let get = Float.Array.unsafe_get and set = Float.Array.unsafe_set in
  for j = 1 to n do
    for k = 1 to n do
      (* x faces *)
      set d ((0 * sx) + (j * sy) + k) (-.get d ((1 * sx) + (j * sy) + k));
      set d
        (((n + 1) * sx) + (j * sy) + k)
        (-.get d ((n * sx) + (j * sy) + k))
    done
  done;
  for i = 1 to n do
    for k = 1 to n do
      (* y faces *)
      set d ((i * sx) + (0 * sy) + k) (-.get d ((i * sx) + (1 * sy) + k));
      set d
        ((i * sx) + ((n + 1) * sy) + k)
        (-.get d ((i * sx) + (n * sy) + k))
    done
  done;
  for i = 1 to n do
    for j = 1 to n do
      (* z faces *)
      set d ((i * sx) + (j * sy) + 0) (-.get d ((i * sx) + (j * sy) + 1));
      set d ((i * sx) + (j * sy) + n + 1) (-.get d ((i * sx) + (j * sy) + n))
    done
  done

let laplacian_cc (level : Level.t) ~out ~input =
  apply_boundaries level input;
  let n = level.Level.n in
  let sx, sy = strides level in
  let inv_h2 = 1. /. (level.Level.h *. level.Level.h) in
  let src = Mesh.data input and dst = Mesh.data out in
  let get = Float.Array.unsafe_get and set = Float.Array.unsafe_set in
  for i = 1 to n do
    for j = 1 to n do
      let row = (i * sx) + (j * sy) in
      for k = 1 to n do
        let idx = row + k in
        let v =
          inv_h2
          *. ((6. *. get src idx)
             -. (get src (idx - sx) +. get src (idx + sx) +. get src (idx - sy)
               +. get src (idx + sy) +. get src (idx - 1) +. get src (idx + 1)
               ))
        in
        set dst idx v
      done
    done
  done

let jacobi_cc (level : Level.t) =
  let u = Level.u level in
  apply_boundaries level u;
  let n = level.Level.n in
  let sx, sy = strides level in
  let inv_h2 = 1. /. (level.Level.h *. level.Level.h) in
  let w = 2. /. 3. /. (6. *. inv_h2) in
  let du = Mesh.data u in
  let df = Mesh.data (Level.f level) in
  let dt = Mesh.data (Grids.find level.Level.grids "tmp") in
  let get = Float.Array.unsafe_get and set = Float.Array.unsafe_set in
  for i = 1 to n do
    for j = 1 to n do
      let row = (i * sx) + (j * sy) in
      for k = 1 to n do
        let idx = row + k in
        let au =
          inv_h2
          *. ((6. *. get du idx)
             -. (get du (idx - sx) +. get du (idx + sx) +. get du (idx - sy)
               +. get du (idx + sy) +. get du (idx - 1) +. get du (idx + 1)))
        in
        set dt idx (get du idx +. (w *. (get df idx -. au)))
      done
    done
  done;
  for i = 1 to n do
    for j = 1 to n do
      let row = (i * sx) + (j * sy) in
      for k = 1 to n do
        let idx = row + k in
        set du idx (get dt idx)
      done
    done
  done

let gsrb_sweep (level : Level.t) color =
  let n = level.Level.n in
  let sx, sy = strides level in
  let inv_h2 = 1. /. (level.Level.h *. level.Level.h) in
  let du = Mesh.data (Level.u level) in
  let df = Mesh.data (Level.f level) in
  let dd = Mesh.data (Level.dinv level) in
  let bx = Mesh.data (Grids.find level.Level.grids "beta_x") in
  let by = Mesh.data (Grids.find level.Level.grids "beta_y") in
  let bz = Mesh.data (Grids.find level.Level.grids "beta_z") in
  let get = Float.Array.unsafe_get and set = Float.Array.unsafe_set in
  for i = 1 to n do
    for j = 1 to n do
      let row = (i * sx) + (j * sy) in
      let k0 = 1 + ((((color - i - j - 1) mod 2) + 2) mod 2) in
      let k = ref k0 in
      while !k <= n do
        let idx = row + !k in
        let blo_x = get bx idx and bhi_x = get bx (idx + sx) in
        let blo_y = get by idx and bhi_y = get by (idx + sy) in
        let blo_z = get bz idx and bhi_z = get bz (idx + 1) in
        let au =
          inv_h2
          *. (((blo_x +. bhi_x +. blo_y +. bhi_y +. blo_z +. bhi_z)
              *. get du idx)
             -. ((blo_x *. get du (idx - sx))
               +. (bhi_x *. get du (idx + sx))
               +. (blo_y *. get du (idx - sy))
               +. (bhi_y *. get du (idx + sy))
               +. (blo_z *. get du (idx - 1))
               +. (bhi_z *. get du (idx + 1))))
        in
        set du idx (get du idx +. (get dd idx *. (get df idx -. au)));
        k := !k + 2
      done
    done
  done

let smooth_gsrb level =
  apply_boundaries level (Level.u level);
  gsrb_sweep level 0;
  apply_boundaries level (Level.u level);
  gsrb_sweep level 1

let residual_vc (level : Level.t) =
  apply_boundaries level (Level.u level);
  let n = level.Level.n in
  let sx, sy = strides level in
  let inv_h2 = 1. /. (level.Level.h *. level.Level.h) in
  let du = Mesh.data (Level.u level) in
  let df = Mesh.data (Level.f level) in
  let dr = Mesh.data (Level.res level) in
  let bx = Mesh.data (Grids.find level.Level.grids "beta_x") in
  let by = Mesh.data (Grids.find level.Level.grids "beta_y") in
  let bz = Mesh.data (Grids.find level.Level.grids "beta_z") in
  let get = Float.Array.unsafe_get and set = Float.Array.unsafe_set in
  for i = 1 to n do
    for j = 1 to n do
      let row = (i * sx) + (j * sy) in
      for k = 1 to n do
        let idx = row + k in
        let blo_x = get bx idx and bhi_x = get bx (idx + sx) in
        let blo_y = get by idx and bhi_y = get by (idx + sy) in
        let blo_z = get bz idx and bhi_z = get bz (idx + 1) in
        let au =
          inv_h2
          *. (((blo_x +. bhi_x +. blo_y +. bhi_y +. blo_z +. bhi_z)
              *. get du idx)
             -. ((blo_x *. get du (idx - sx))
               +. (bhi_x *. get du (idx + sx))
               +. (blo_y *. get du (idx - sy))
               +. (bhi_y *. get du (idx + sy))
               +. (blo_z *. get du (idx - 1))
               +. (bhi_z *. get du (idx + 1))))
        in
        set dr idx (get df idx -. au)
      done
    done
  done

let restrict_pc ~(coarse : Level.t) ~src =
  let nc = coarse.Level.n in
  let sxc, syc = strides coarse in
  let ef = (2 * nc) + 2 in
  let sxf, syf = (ef * ef, ef) in
  let ds = Mesh.data src and dc = Mesh.data (Level.f coarse) in
  let get = Float.Array.unsafe_get and set = Float.Array.unsafe_set in
  for i = 1 to nc do
    for j = 1 to nc do
      for k = 1 to nc do
        let fi = (2 * i) - 1 and fj = (2 * j) - 1 and fk = (2 * k) - 1 in
        let b = (fi * sxf) + (fj * syf) + fk in
        let s =
          get ds b +. get ds (b + 1) +. get ds (b + syf)
          +. get ds (b + syf + 1)
          +. get ds (b + sxf)
          +. get ds (b + sxf + 1)
          +. get ds (b + sxf + syf)
          +. get ds (b + sxf + syf + 1)
        in
        set dc ((i * sxc) + (j * syc) + k) (0.125 *. s)
      done
    done
  done

let interpolate_pc ~(coarse : Level.t) ~(fine : Level.t) =
  let nc = coarse.Level.n in
  let sxc, syc = strides coarse in
  let sxf, syf = strides fine in
  let dc = Mesh.data (Level.u coarse) and df = Mesh.data (Level.u fine) in
  let get = Float.Array.unsafe_get and set = Float.Array.unsafe_set in
  for i = 1 to nc do
    for j = 1 to nc do
      for k = 1 to nc do
        let v = get dc ((i * sxc) + (j * syc) + k) in
        let fi = (2 * i) - 1 and fj = (2 * j) - 1 and fk = (2 * k) - 1 in
        let b = (fi * sxf) + (fj * syf) + fk in
        let bump idx = set df idx (get df idx +. v) in
        bump b;
        bump (b + 1);
        bump (b + syf);
        bump (b + syf + 1);
        bump (b + sxf);
        bump (b + sxf + 1);
        bump (b + sxf + syf);
        bump (b + sxf + syf + 1)
      done
    done
  done

let init_dinv (level : Level.t) =
  let n = level.Level.n in
  let sx, sy = strides level in
  let inv_h2 = 1. /. (level.Level.h *. level.Level.h) in
  let dd = Mesh.data (Level.dinv level) in
  let bx = Mesh.data (Grids.find level.Level.grids "beta_x") in
  let by = Mesh.data (Grids.find level.Level.grids "beta_y") in
  let bz = Mesh.data (Grids.find level.Level.grids "beta_z") in
  let get = Float.Array.unsafe_get and set = Float.Array.unsafe_set in
  for i = 1 to n do
    for j = 1 to n do
      let row = (i * sx) + (j * sy) in
      for k = 1 to n do
        let idx = row + k in
        let s =
          get bx idx +. get bx (idx + sx) +. get by idx
          +. get by (idx + sy)
          +. get bz idx
          +. get bz (idx + 1)
        in
        set dd idx (1. /. (inv_h2 *. s))
      done
    done
  done

type t = { levels : Level.t array; smooths : int; coarse_iters : int }

let create ?(smooths = 2) ?(coarse_iters = 24) ?(coarsest_n = 2) ~n () =
  let rec sizes acc n =
    if n = coarsest_n then List.rev (n :: acc)
    else if n < coarsest_n || n mod 2 <> 0 then
      invalid_arg "Baseline.create: n must be coarsest_n times a power of 2"
    else sizes (n :: acc) (n / 2)
  in
  let levels =
    Array.of_list (List.map (fun n -> Level.create ~n) (sizes [] n))
  in
  Array.iter init_dinv levels;
  { levels; smooths; coarse_iters }

let finest t = t.levels.(0)
let dof t = Level.dof (finest t)

let set_beta t beta =
  Array.iter
    (fun level ->
      Level.set_beta level beta;
      init_dinv level)
    t.levels

let rec cycle t i =
  let coarsest = Array.length t.levels - 1 in
  if i = coarsest then
    for _ = 1 to t.coarse_iters do
      smooth_gsrb t.levels.(i)
    done
  else begin
    for _ = 1 to t.smooths do
      smooth_gsrb t.levels.(i)
    done;
    residual_vc t.levels.(i);
    let fine = t.levels.(i) and coarse = t.levels.(i + 1) in
    restrict_pc ~coarse ~src:(Level.res fine);
    Mesh.fill (Level.u coarse) 0.;
    cycle t (i + 1);
    interpolate_pc ~coarse ~fine;
    for _ = 1 to t.smooths do
      smooth_gsrb t.levels.(i)
    done
  end

let vcycle t = cycle t 0

let residual_norm t =
  residual_vc (finest t);
  Level.interior_norm_l2 (finest t) (Level.res (finest t))

let solve ?(cycles = 10) t =
  let norms = Array.make (cycles + 1) 0. in
  norms.(0) <- residual_norm t;
  for c = 1 to cycles do
    vcycle t;
    norms.(c) <- residual_norm t
  done;
  norms
