(** The HPGMG operator suite, expressed in the Snowflake DSL (paper §V).

    All operators are 3-D, cell-centred, with a one-cell ghost halo: a level
    of interior size n³ is stored in an (n+2)³ mesh.  Grid names used
    throughout: ["u"] (solution), ["f"] (right-hand side), ["res"]
    (residual), ["tmp"] (Jacobi ping-pong), ["beta_x"/"beta_y"/"beta_z"]
    (face-centred coefficients; [beta_x] at cell [i] is the coefficient on
    the face between cells [i-1] and [i]), ["dinv"] (precomputed inverse
    diagonal).  The scalar parameter ["inv_h2"] is 1/h².

    The continuous operator is A u = −∇·(β∇u) (Poisson when β ≡ 1), with
    homogeneous Dirichlet boundaries enforced linearly through the ghost
    cells (ghost = −interior neighbour), exactly the boundary treatment in
    the paper's Fig. 4 example. *)

open Snowflake

val dims : int
(** 3. *)

val interior : Domain.t
(** Unit-stride domain over all interior cells (ghost = 1), reusable across
    level sizes thanks to relative bounds. *)

val boundaries : grid:string -> Stencil.t list
(** The six face stencils of the linear Dirichlet condition on [grid]:
    ghost value ← −(first interior value on the other side of the face). *)

val laplacian_7pt : out:string -> input:string -> Stencil.t
(** Constant-coefficient 7-point operator:
    [out = inv_h2 * (6*input(0) − Σ face neighbours)] — the canonical
    CC 7-pt stencil of Fig. 7. *)

val residual_cc : Stencil.t
(** [res = f − A u] with the constant-coefficient A. *)

val jacobi_cc : out:string -> input:string -> Stencil.t
(** One weighted-Jacobi sweep
    [out = input + (2/3) D⁻¹ (f − A input)], constant-coefficient;
    D = 6·inv_h2.  (Fig. 7's "CC Jacobi".) *)

val vc_apply : out:string -> input:string -> Stencil.t
(** [out = A_vc input], the variable-coefficient 7-point operator. *)

val residual_vc : Stencil.t
(** [res = f − A_vc u]. *)

val dinv_setup : Stencil.t
(** Precomputes [dinv = 1 / (inv_h2 · Σ face betas)] over the interior. *)

val gsrb_color : color:int -> Stencil.t
(** One colour sweep of in-place Gauss–Seidel red-black with the
    variable-coefficient operator:
    [u += dinv * (f − A_vc u)] over the checkerboard colour. *)

val gsrb_smooth : Group.t
(** One full GSRB smooth as measured in Fig. 8: boundaries, red sweep,
    boundaries, black sweep — the interleaved sequence the paper
    describes. *)

val jacobi_smooth : Group.t
(** Boundary exchange + one CC Jacobi sweep u→tmp plus the copy-back
    sweep tmp→u (out-of-place ping-pong). *)

val restriction : Stencil.t
(** Piecewise-constant (8-cell average) restriction of the fine ["res"]
    into the coarse ["f"]: iteration over the *coarse* interior, fine cells
    read through scale-2 affine maps.  Grid names: reads ["fine_res"],
    writes ["coarse_f"]. *)

val interpolation : Stencil.t list
(** Piecewise-constant interpolation-and-correct: fine ["u"] += coarse
    ["u"] of the containing coarse cell.  Eight stencils (one per fine-cell
    parity), each iterating the coarse interior and writing the fine mesh
    through a scale-2 output map.  Grid names: reads ["coarse_u"], reads and
    writes ["fine_u"]. *)

val interpolation_linear : Stencil.t list
(** Trilinear interpolation-and-correct (HPGMG's higher-order prolongation,
    implemented as the paper's future-work extension): each of the eight
    parity stencils blends the 8 nearest coarse cells with weights
    (3/4,1/4)³ per axis. *)

(** {2 Higher-order and alternative operators}

    The paper's §II claims "higher-order operators (larger stencils)" as a
    language feature; these exercise it. *)

val laplacian_27pt : out:string -> input:string -> Stencil.t
(** 27-point compact constant-coefficient operator (A = −Δ + O(h²)):
    weights (−128·centre + 14·faces + 3·edges + 1·corners)/30, radius-1
    but 27 taps. *)

val laplacian_4th : out:string -> input:string -> Stencil.t
(** Fourth-order 13-point operator: per axis
    (−u(−2) + 16u(−1) − 30u(0) + 16u(+1) − u(+2)) / 12, negated and scaled
    by [inv_h2].  Radius 2: its domain keeps two cells from each face, so
    it composes with a ghost region of width ≥ 2 or with interior-only
    evaluation. *)

val gsrb4_smooth : Group.t
(** A four-colour in-place smoothing (paper Fig. 3b): colours by
    coordinate-sum mod 4, each colour sweep point-parallel, boundaries
    interleaved between sweeps. *)

val chebyshev_smooth : degree:int -> Group.t
(** Degree-d Chebyshev smoothing for the constant-coefficient operator
    (the paper names Chebyshev smoothing among the in-place techniques the
    language must express).  Step k computes
    [u ← u + α_k (f − A u)] out-of-place through ["tmp"] ping-pong, with
    boundary stencils interleaved; the α_k are scalar parameters
    ["cheb_a0"], ["cheb_a1"], ... bound at call time (see
    {!chebyshev_params}). *)

val chebyshev_params :
  level_h:float -> lambda_lo_frac:float -> degree:int -> (string * float) list
(** Parameter bindings for {!chebyshev_smooth}: classic Chebyshev step
    sizes targeting the eigenvalue interval
    [[lambda_lo_frac·λmax, λmax]] of the CC operator, whose λmax on a unit
    cube with spacing h is 12/h² (up to the sin² factor ≤ 1).  Includes
    [inv_h2]. *)

(** {2 The full HPGMG (Helmholtz) operator}

    HPGMG's operator is A u = a·α(x)·u − b·∇·(β∇u) with a cell-centred
    coefficient grid ["alpha"] and scalar parameters ["a_coef"],
    ["b_coef"]; the Poisson configuration used elsewhere in this library
    is the a = 0, b = 1 special case.  (We keep the sign convention
    A = −∇·β∇ inside {!vc_apply}, so [b_coef] multiplies that SPD
    term.) *)

val helmholtz_apply_expr : string -> Expr.t
val residual_helmholtz : Stencil.t
val dinv_helmholtz_setup : Stencil.t
val gsrb_helmholtz_color : color:int -> Stencil.t
val gsrb_helmholtz_smooth : Group.t
