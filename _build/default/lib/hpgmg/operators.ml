open Sf_util
open Snowflake

(* The dimension-generic constructions live in {!Nd}; this module pins
   them to the 3-D HPGMG instantiation and adds the operators that are
   inherently 3-D (27-point, fourth-order, Chebyshev step sizing). *)

let dims = 3
let zero = Ivec.zero dims

let off a v =
  let o = Ivec.zero dims in
  o.(a) <- v;
  o

let interior = Nd.interior ~dims
let boundaries ~grid = Nd.boundaries ~dims ~grid
let cc_apply_expr input = Nd.cc_apply_expr ~dims input
let laplacian_7pt ~out ~input = Nd.laplacian_cc ~dims ~out ~input
let residual_cc = Nd.residual_cc ~dims
let jacobi_cc ~out ~input = Nd.jacobi_cc ~dims ~out ~input
let vc_apply_expr input = Nd.vc_apply_expr ~dims input

let vc_apply ~out ~input =
  Stencil.make ~label:"vc_apply" ~output:out ~expr:(vc_apply_expr input)
    ~domain:interior ()

let residual_vc = Nd.residual_vc ~dims
let dinv_setup = Nd.dinv_setup ~dims
let gsrb_color ~color = Nd.gsrb_color ~dims ~color
let gsrb_smooth = Nd.gsrb_smooth ~dims
let copy_interior ~out ~input = Nd.copy_interior ~dims ~out ~input
let jacobi_smooth = Nd.jacobi_smooth ~dims
let restriction = Nd.restriction ~dims
let interpolation = Nd.interpolation ~dims

let parities =
  List.concat_map
    (fun px ->
      List.concat_map
        (fun py -> List.map (fun pz -> (px, py, pz)) [ 0; 1 ])
        [ 0; 1 ])
    [ 0; 1 ]

let interpolation_linear =
  List.map
    (fun (px, py, pz) ->
      let out_map =
        Affine.make ~scale:(Ivec.make dims 2)
          ~offset:(Ivec.of_list [ px - 1; py - 1; pz - 1 ])
      in
      (* per axis: 3/4 from the containing coarse cell, 1/4 from the coarse
         neighbour on the side the fine cell leans toward *)
      let dir p = if p = 0 then -1 else 1 in
      let terms =
        List.concat_map
          (fun dx ->
            List.concat_map
              (fun dy ->
                List.map
                  (fun dz ->
                    let w d = if d = 0 then 0.75 else 0.25 in
                    let weight = w dx *. w dy *. w dz in
                    let offset =
                      Ivec.of_list
                        [
                          (if dx = 0 then 0 else dir px);
                          (if dy = 0 then 0 else dir py);
                          (if dz = 0 then 0 else dir pz);
                        ]
                    in
                    Expr.(const weight *: read "coarse_u" offset))
                  [ 0; 1 ])
              [ 0; 1 ])
          [ 0; 1 ]
      in
      Stencil.make
        ~label:(Printf.sprintf "interp_tl_%d%d%d" px py pz)
        ~output:"fine_u" ~out_map
        ~expr:Expr.(read_affine "fine_u" out_map +: sum terms)
        ~domain:interior ())
    parities

(* ------------------------------------------------ higher-order et al. *)

let offsets_within ~radius ~l1_min ~l1_max =
  let r = List.init ((2 * radius) + 1) (fun i -> i - radius) in
  List.concat_map
    (fun dx ->
      List.concat_map
        (fun dy ->
          List.filter_map
            (fun dz ->
              let l1 = abs dx + abs dy + abs dz in
              if l1 >= l1_min && l1 <= l1_max then
                Some (Ivec.of_list [ dx; dy; dz ])
              else None)
            r)
        r)
    r

let laplacian_27pt ~out ~input =
  let u o = Expr.read input o in
  let weighted w offs = List.map (fun o -> Expr.(const w *: u o)) offs in
  let faces = offsets_within ~radius:1 ~l1_min:1 ~l1_max:1 in
  let edges =
    List.filter
      (fun o -> Ivec.linf_norm o = 1)
      (offsets_within ~radius:1 ~l1_min:2 ~l1_max:2)
  in
  let corners = offsets_within ~radius:1 ~l1_min:3 ~l1_max:3 in
  let expr =
    Expr.(
      param "inv_h2"
      *: (const (1. /. 30.)
         *: ((const 128. *: u zero)
            -: sum
                 (weighted 14. faces @ weighted 3. edges
                @ weighted 1. corners))))
  in
  Stencil.make ~label:"cc_laplacian_27pt" ~output:out ~expr ~domain:interior
    ()

let laplacian_4th ~out ~input =
  let u o = Expr.read input o in
  let axis_terms a =
    Expr.
      [
        const (-1.) *: u (off a (-2));
        const 16. *: u (off a (-1));
        const 16. *: u (off a 1);
        const (-1.) *: u (off a 2);
      ]
  in
  let expr =
    Expr.(
      param "inv_h2"
      *: (const (1. /. 12.)
         *: ((const 90. *: u zero)
            -: sum (List.concat_map axis_terms [ 0; 1; 2 ]))))
  in
  Stencil.make ~label:"cc_laplacian_4th" ~output:out ~expr
    ~domain:(Domain.interior dims ~ghost:2)
    ()

let gsrb4_color ~color =
  Stencil.make
    ~label:(Printf.sprintf "gsrb4_c%d" color)
    ~output:"u"
    ~expr:
      Expr.(
        read "u" zero
        +: (read "dinv" zero *: (read "f" zero -: vc_apply_expr "u")))
    ~domain:(Domain.colored dims ~ghost:1 ~color ~ncolors:4)
    ()

let gsrb4_smooth =
  Group.make ~label:"gsrb4_smooth"
    (List.concat_map
       (fun color -> boundaries ~grid:"u" @ [ gsrb4_color ~color ])
       [ 0; 1; 2; 3 ])

let chebyshev_smooth ~degree =
  if degree < 1 then invalid_arg "Operators.chebyshev_smooth: degree >= 1";
  let step k ~src ~dst =
    Stencil.make
      ~label:(Printf.sprintf "cheb_step_%d" k)
      ~output:dst
      ~expr:
        Expr.(
          read src zero
          +: (param (Printf.sprintf "cheb_a%d" k)
             *: (read "f" zero -: cc_apply_expr src)))
      ~domain:interior ()
  in
  let rec steps k src dst acc =
    if k >= degree then List.rev acc
    else
      let s = boundaries ~grid:src @ [ step k ~src ~dst ] in
      steps (k + 1) dst src (List.rev_append s acc)
  in
  let body = steps 0 "u" "tmp" [] in
  (* after an odd number of steps the current iterate lives in tmp *)
  let tail =
    if degree mod 2 = 1 then [ copy_interior ~out:"u" ~input:"tmp" ] else []
  in
  Group.make ~label:(Printf.sprintf "chebyshev_%d" degree) (body @ tail)

let chebyshev_params ~level_h ~lambda_lo_frac ~degree =
  let lambda_max = 12. /. (level_h *. level_h) in
  let lambda_min = lambda_lo_frac *. lambda_max in
  let theta = 0.5 *. (lambda_max +. lambda_min) in
  let rho = 0.5 *. (lambda_max -. lambda_min) in
  let pi = 4. *. atan 1. in
  ("inv_h2", 1. /. (level_h *. level_h))
  :: List.init degree (fun k ->
         let angle =
           pi *. ((2. *. float_of_int k) +. 1.) /. (2. *. float_of_int degree)
         in
         (Printf.sprintf "cheb_a%d" k, 1. /. (theta +. (rho *. cos angle))))

(* ------------------------------------------------- Helmholtz operator *)

(* HPGMG's full operator is a·α(x)·u − b·∇·β∇u with a cell-centred
   coefficient grid "alpha" and scalar parameters a_coef/b_coef; Poisson
   is the a = 0, b = 1 special case.  [dims] is 3 here. *)
let helmholtz_apply_expr input =
  let u o = Expr.read input o in
  Expr.(
    (param "a_coef" *: read "alpha" zero *: u zero)
    +: (param "b_coef" *: vc_apply_expr input))

let sum_betas_3d =
  Expr.sum
    (List.concat_map
       (fun a ->
         [ Expr.read (Nd.beta_name a) zero; Expr.read (Nd.beta_name a) (off a 1) ])
       [ 0; 1; 2 ])

let helmholtz_diag_expr =
  Expr.(
    (param "a_coef" *: read "alpha" zero)
    +: (param "b_coef" *: param "inv_h2" *: sum_betas_3d))

let residual_helmholtz =
  Stencil.make ~label:"helmholtz_residual" ~output:"res"
    ~expr:Expr.(read "f" zero -: helmholtz_apply_expr "u")
    ~domain:interior ()

let dinv_helmholtz_setup =
  Stencil.make ~label:"dinv_helmholtz" ~output:"dinv"
    ~expr:Expr.(const 1. /: helmholtz_diag_expr)
    ~domain:interior ()

let gsrb_helmholtz_color ~color =
  Stencil.make
    ~label:(if color = 0 then "gsrb_h_red" else "gsrb_h_black")
    ~output:"u"
    ~expr:
      Expr.(
        read "u" zero
        +: (read "dinv" zero
           *: (read "f" zero -: helmholtz_apply_expr "u")))
    ~domain:(Domain.colored dims ~ghost:1 ~color ~ncolors:2)
    ()

let gsrb_helmholtz_smooth =
  Group.make ~label:"gsrb_helmholtz_smooth"
    (boundaries ~grid:"u"
    @ [ gsrb_helmholtz_color ~color:0 ]
    @ boundaries ~grid:"u"
    @ [ gsrb_helmholtz_color ~color:1 ])
