(** One level of the multigrid hierarchy.

    A level of interior size n³ owns its meshes — solution, right-hand
    side, residual, Jacobi scratch, the three face-coefficient arrays and
    the inverse diagonal — all allocated (n+2)³ with a one-cell ghost
    ring.  The physical domain is the unit cube; the mesh spacing is
    h = 1/n and cell (i,j,k) is centred at ((i−½)h, (j−½)h, (k−½)h) with
    i = 1..n interior. *)

open Sf_util
open Sf_mesh

type t = {
  n : int;  (** interior cells per axis; must be even and ≥ 2 *)
  shape : Ivec.t;  (** (n+2, n+2, n+2) *)
  h : float;  (** 1 / n *)
  grids : Grids.t;
}

val create : n:int -> t
(** Allocates all meshes zeroed except betas, which default to 1
    (constant-coefficient Poisson).  Raises [Invalid_argument] for odd or
    too-small [n]. *)

val params : t -> (string * float) list
(** The scalar bindings every kernel on this level needs: [inv_h2]. *)

val u : t -> Mesh.t
val f : t -> Mesh.t
val res : t -> Mesh.t
val dinv : t -> Mesh.t

val dof : t -> int
(** n³ — unknowns on this level. *)

val cell_center : t -> Ivec.t -> float * float * float
(** Physical coordinates of a cell's centre. *)

val fill_interior : Mesh.t -> t -> (float -> float -> float -> float) -> unit
(** Evaluate a function of physical cell-centre coordinates over the
    interior cells of a mesh belonging to this level. *)

val set_beta : t -> (float -> float -> float -> float) -> unit
(** Fill the three face-coefficient meshes by evaluating β at face
    centres (every stored face, including those bordering ghosts). *)

val interior_norm_l2 : t -> Mesh.t -> float
(** Discrete L2 norm over interior cells only (ghosts excluded). *)

val interior_norm_linf : t -> Mesh.t -> float

val error_vs : t -> Mesh.t -> (float -> float -> float -> float) -> float
(** L∞ distance between a mesh and an exact solution sampled at cell
    centres, over the interior. *)
