open Sf_util
open Sf_mesh
open Snowflake

let axis_name = function
  | 0 -> "x"
  | 1 -> "y"
  | 2 -> "z"
  | 3 -> "w"
  | i -> Printf.sprintf "a%d" i

let beta_name a = "beta_" ^ axis_name a

let zero dims = Ivec.zero dims

let off dims a v =
  let o = Ivec.zero dims in
  o.(a) <- v;
  o

let axes dims = List.init dims Fun.id

(* Local operator aliases instead of [Expr.( ... )] opens: the local open
   would shadow this module's ubiquitous [dims] parameter with
   [Expr.dims]. *)
let ( +: ) = Expr.( +: )
let ( -: ) = Expr.( -: )
let ( *: ) = Expr.( *: )
let ( /: ) = Expr.( /: )
let const = Expr.const
let eparam = Expr.param
let interior ~dims = Domain.interior dims ~ghost:1

let boundaries ~dims ~grid = Dsl.dirichlet_faces ~dims ~grid

let cc_apply_expr ~dims input =
  let u o = Expr.read input o in
  let neighbours =
    Expr.sum
      (List.concat_map
         (fun a -> [ u (off dims a (-1)); u (off dims a 1) ])
         (axes dims))
  in
  let center_coeff = float_of_int (2 * dims) in
  let center = u (zero dims) in
  eparam "inv_h2" *: ((const center_coeff *: center) -: neighbours)

let laplacian_cc ~dims ~out ~input =
  Stencil.make
    ~label:(Printf.sprintf "cc_laplacian_%dpt" ((2 * dims) + 1))
    ~output:out
    ~expr:(cc_apply_expr ~dims input)
    ~domain:(interior ~dims) ()

let residual_cc ~dims =
  Stencil.make ~label:"cc_residual" ~output:"res"
    ~expr:(Expr.read "f" (zero dims) -: cc_apply_expr ~dims "u")
    ~domain:(interior ~dims) ()

let jacobi_cc ~dims ~out ~input =
  let diag_coeff = float_of_int (2 * dims) in
  let dinv = const (2. /. 3.) /: (const diag_coeff *: eparam "inv_h2") in
  Stencil.make ~label:"cc_jacobi" ~output:out
    ~expr:
      (Expr.read input (zero dims)
      +: (dinv *: (Expr.read "f" (zero dims) -: cc_apply_expr ~dims input)))
    ~domain:(interior ~dims) ()

let copy_interior ~dims ~out ~input =
  Stencil.make
    ~label:(Printf.sprintf "copy_%s_to_%s" input out)
    ~output:out
    ~expr:(Expr.read input (zero dims))
    ~domain:(interior ~dims) ()

let jacobi_smooth ~dims =
  Group.make ~label:"jacobi_smooth"
    (boundaries ~dims ~grid:"u"
    @ [
        jacobi_cc ~dims ~out:"tmp" ~input:"u";
        copy_interior ~dims ~out:"u" ~input:"tmp";
      ])

let beta_lo dims a = Expr.read (beta_name a) (zero dims)
let beta_hi dims a = Expr.read (beta_name a) (off dims a 1)

let sum_betas dims =
  Expr.sum
    (List.concat_map (fun a -> [ beta_lo dims a; beta_hi dims a ]) (axes dims))

let vc_apply_expr ~dims input =
  let u o = Expr.read input o in
  let flux =
    Expr.sum
      (List.concat_map
         (fun a ->
           [
             beta_lo dims a *: u (off dims a (-1));
             beta_hi dims a *: u (off dims a 1);
           ])
         (axes dims))
  in
  eparam "inv_h2" *: ((sum_betas dims *: u (zero dims)) -: flux)

let residual_vc ~dims =
  Stencil.make ~label:"vc_residual" ~output:"res"
    ~expr:(Expr.read "f" (zero dims) -: vc_apply_expr ~dims "u")
    ~domain:(interior ~dims) ()

let dinv_setup ~dims =
  Stencil.make ~label:"dinv_setup" ~output:"dinv"
    ~expr:(const 1. /: (eparam "inv_h2" *: sum_betas dims))
    ~domain:(interior ~dims) ()

let gsrb_color ~dims ~color =
  Stencil.make
    ~label:(if color = 0 then "gsrb_red" else "gsrb_black")
    ~output:"u"
    ~expr:
      (Expr.read "u" (zero dims)
      +: (Expr.read "dinv" (zero dims)
         *: (Expr.read "f" (zero dims) -: vc_apply_expr ~dims "u")))
    ~domain:(Domain.colored dims ~ghost:1 ~color ~ncolors:2)
    ()

let gsrb_smooth ~dims =
  Group.make ~label:"gsrb_smooth"
    (boundaries ~dims ~grid:"u"
    @ [ gsrb_color ~dims ~color:0 ]
    @ boundaries ~dims ~grid:"u"
    @ [ gsrb_color ~dims ~color:1 ])

(* all corners of the unit hypercube, i.e. {0,1}^dims *)
let parities dims =
  let rec go = function
    | 0 -> [ [] ]
    | d -> List.concat_map (fun p -> [ 0 :: p; 1 :: p ]) (go (d - 1))
  in
  List.map Array.of_list (go dims)

let restriction ~dims =
  let scale = Ivec.make dims 2 in
  let taps =
    List.map
      (fun p ->
        Expr.read_affine "fine_res"
          (Affine.make ~scale ~offset:(Array.map (fun v -> v - 1) p)))
      (parities dims)
  in
  let w = 1. /. float_of_int (1 lsl dims) in
  Stencil.make ~label:"restrict_pc" ~output:"coarse_f"
    ~expr:(Expr.sum taps *: const w)
    ~domain:(interior ~dims) ()

let interpolation ~dims =
  List.map
    (fun p ->
      let out_map =
        Affine.make ~scale:(Ivec.make dims 2)
          ~offset:(Array.map (fun v -> v - 1) p)
      in
      Stencil.make
        ~label:
          (Printf.sprintf "interp_pc_%s"
             (String.concat "" (List.map string_of_int (Ivec.to_list p))))
        ~output:"fine_u" ~out_map
        ~expr:
          (Expr.read_affine "fine_u" out_map
          +: Expr.read "coarse_u" (zero dims))
        ~domain:(interior ~dims) ())
    (parities dims)

(* ---------------------------------------------------------------- Level *)

module Level = struct
  type t = { n : int; dims : int; shape : Ivec.t; h : float; grids : Grids.t }

  let create ~dims ~n =
    if dims < 1 then invalid_arg "Nd.Level.create: dims must be positive";
    if n < 2 || n mod 2 <> 0 then
      invalid_arg "Nd.Level.create: n must be even and >= 2";
    let shape = Ivec.make dims (n + 2) in
    let grids = Grids.create () in
    List.iter
      (fun name -> Grids.add grids name (Mesh.create shape))
      [ "u"; "f"; "res"; "tmp"; "dinv" ];
    List.iter
      (fun a ->
        let m = Mesh.create shape in
        Mesh.fill m 1.;
        Grids.add grids (beta_name a) m)
      (axes dims);
    { n; dims; shape; h = 1. /. float_of_int n; grids }

  let params t = [ ("inv_h2", 1. /. (t.h *. t.h)) ]
  let u t = Grids.find t.grids "u"
  let f t = Grids.find t.grids "f"
  let res t = Grids.find t.grids "res"

  let dof t =
    let rec pow acc k = if k = 0 then acc else pow (acc * t.n) (k - 1) in
    pow 1 t.dims

  let cell_center t p =
    Array.map (fun i -> (float_of_int i -. 0.5) *. t.h) p

  let iter_interior t fn =
    let d =
      Domain.resolve_rect ~shape:t.shape
        (Domain.rect
           ~lo:(List.init t.dims (fun _ -> 1))
           ~hi:(List.init t.dims (fun _ -> -1))
           ())
    in
    Domain.iter d fn

  let fill_interior mesh t fn =
    iter_interior t (fun p -> Mesh.set mesh p (fn (cell_center t p)))

  let set_beta t beta =
    List.iter
      (fun axis ->
        let m = Grids.find t.grids (beta_name axis) in
        Mesh.fill_with m (fun p ->
            let coords =
              Array.mapi
                (fun a i ->
                  if a = axis then float_of_int (i - 1) *. t.h
                  else (float_of_int i -. 0.5) *. t.h)
                p
            in
            beta coords))
      (axes t.dims)

  let interior_norm_l2 t mesh =
    let acc = ref 0. in
    iter_interior t (fun p ->
        let v = Mesh.get mesh p in
        acc := !acc +. (v *. v));
    sqrt !acc

  let error_vs t mesh exact =
    let acc = ref 0. in
    iter_interior t (fun p ->
        acc :=
          Float.max !acc
            (Float.abs (Mesh.get mesh p -. exact (cell_center t p))));
    !acc
end

(* --------------------------------------------------------------- Solver *)

module Solver = struct
  open Sf_backends

  type t = {
    levels : Level.t array;
    backend : Jit.backend;
    smooths : int;
    coarse_iters : int;
  }

  let finest t = t.levels.(0)

  let run_group t (level : Level.t) group grids params =
    let kernel = Jit.compile t.backend ~shape:level.Level.shape group in
    kernel.Kernel.run ~params grids

  let dims t = (finest t).Level.dims

  let init_dinv t =
    Array.iter
      (fun (level : Level.t) ->
        run_group t level
          (Group.make ~label:"dinv" [ dinv_setup ~dims:level.Level.dims ])
          level.Level.grids (Level.params level))
      t.levels

  let create ?(backend = Jit.Compiled) ?(smooths = 2) ?(coarsest_n = 2)
      ?(coarse_iters = 24) ~dims ~n () =
    let rec sizes acc n =
      if n = coarsest_n then List.rev (n :: acc)
      else if n < coarsest_n || n mod 2 <> 0 then
        invalid_arg "Nd.Solver.create: n must be coarsest_n * 2^k"
      else sizes (n :: acc) (n / 2)
    in
    let levels =
      Array.of_list (List.map (fun n -> Level.create ~dims ~n) (sizes [] n))
    in
    let t = { levels; backend; smooths; coarse_iters } in
    init_dinv t;
    t

  let set_beta t beta =
    Array.iter (fun level -> Level.set_beta level beta) t.levels;
    init_dinv t

  let smooth t i =
    let level = t.levels.(i) in
    run_group t level
      (gsrb_smooth ~dims:(dims t))
      level.Level.grids (Level.params level)

  let compute_residual t i =
    let level = t.levels.(i) in
    run_group t level
      (Group.make ~label:"residual"
         (boundaries ~dims:(dims t) ~grid:"u" @ [ residual_vc ~dims:(dims t) ]))
      level.Level.grids (Level.params level)

  let rec cycle t i =
    let coarsest = Array.length t.levels - 1 in
    if i = coarsest then
      for _ = 1 to t.coarse_iters do
        smooth t i
      done
    else begin
      for _ = 1 to t.smooths do
        smooth t i
      done;
      compute_residual t i;
      let fine = t.levels.(i) and coarse = t.levels.(i + 1) in
      run_group t coarse
        (Group.make ~label:"restrict" [ restriction ~dims:(dims t) ])
        (Grids.of_list
           [ ("fine_res", Level.res fine); ("coarse_f", Level.f coarse) ])
        (Level.params coarse);
      Mesh.fill (Level.u coarse) 0.;
      cycle t (i + 1);
      run_group t coarse
        (Group.make ~label:"interp" (interpolation ~dims:(dims t)))
        (Grids.of_list
           [ ("coarse_u", Level.u coarse); ("fine_u", Level.u fine) ])
        (Level.params coarse);
      for _ = 1 to t.smooths do
        smooth t i
      done
    end

  let vcycle t = cycle t 0

  let residual_norm t =
    compute_residual t 0;
    Level.interior_norm_l2 (finest t) (Level.res (finest t))

  let solve ?(cycles = 10) t =
    let norms = Array.make (cycles + 1) 0. in
    norms.(0) <- residual_norm t;
    for c = 1 to cycles do
      vcycle t;
      norms.(c) <- residual_norm t
    done;
    norms
end

let pi = 4. *. atan 1.

let exact_sine coords =
  Array.fold_left (fun acc x -> acc *. sin (pi *. x)) 1. coords

let rhs_sine ~dims coords =
  float_of_int dims *. pi *. pi *. exact_sine coords
