lib/hpgmg/level.mli: Grids Ivec Mesh Sf_mesh Sf_util
