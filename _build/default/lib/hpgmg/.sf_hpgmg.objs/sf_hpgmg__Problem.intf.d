lib/hpgmg/problem.mli: Level
