lib/hpgmg/mg.mli: Config Hashtbl Jit Level Sf_backends
