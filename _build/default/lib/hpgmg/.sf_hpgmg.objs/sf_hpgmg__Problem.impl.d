lib/hpgmg/problem.ml: Level Mesh Random Sf_mesh
