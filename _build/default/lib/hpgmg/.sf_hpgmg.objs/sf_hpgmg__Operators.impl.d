lib/hpgmg/operators.ml: Affine Array Domain Expr Group Ivec List Nd Printf Sf_util Snowflake Stencil
