lib/hpgmg/mg.ml: Array Config Float Grids Group Hashtbl Jit Kernel Level List Mesh Operators Printf Sf_backends Sf_mesh Snowflake Unix
