lib/hpgmg/baseline.mli: Level Mesh Sf_mesh
