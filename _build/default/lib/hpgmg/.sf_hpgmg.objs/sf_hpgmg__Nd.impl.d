lib/hpgmg/nd.ml: Affine Array Domain Dsl Expr Float Fun Grids Group Ivec Jit Kernel List Mesh Printf Sf_backends Sf_mesh Sf_util Snowflake Stencil String
