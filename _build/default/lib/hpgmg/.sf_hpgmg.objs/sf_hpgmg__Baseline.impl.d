lib/hpgmg/baseline.ml: Array Float Grids Level List Mesh Sf_mesh
