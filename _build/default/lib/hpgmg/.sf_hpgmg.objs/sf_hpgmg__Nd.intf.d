lib/hpgmg/nd.mli: Domain Expr Grids Group Ivec Mesh Sf_backends Sf_mesh Sf_util Snowflake Stencil
