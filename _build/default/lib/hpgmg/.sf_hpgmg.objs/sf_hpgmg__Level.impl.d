lib/hpgmg/level.ml: Array Float Grids Ivec List Mesh Sf_mesh Sf_util
