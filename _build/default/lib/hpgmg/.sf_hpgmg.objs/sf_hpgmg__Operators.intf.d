lib/hpgmg/operators.mli: Domain Expr Group Snowflake Stencil
