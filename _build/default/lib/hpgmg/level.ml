open Sf_util
open Sf_mesh

type t = { n : int; shape : Ivec.t; h : float; grids : Grids.t }

let mesh_names = [ "u"; "f"; "res"; "tmp"; "dinv" ]
let beta_names = [ "beta_x"; "beta_y"; "beta_z" ]

let create ~n =
  if n < 2 || n mod 2 <> 0 then
    invalid_arg "Level.create: n must be even and >= 2";
  let e = n + 2 in
  let shape = Ivec.of_list [ e; e; e ] in
  let grids = Grids.create () in
  List.iter (fun name -> Grids.add grids name (Mesh.create shape)) mesh_names;
  List.iter
    (fun name ->
      let m = Mesh.create shape in
      Mesh.fill m 1.;
      Grids.add grids name m)
    beta_names;
  { n; shape; h = 1. /. float_of_int n; grids }

let params t = [ ("inv_h2", 1. /. (t.h *. t.h)) ]
let u t = Grids.find t.grids "u"
let f t = Grids.find t.grids "f"
let res t = Grids.find t.grids "res"
let dinv t = Grids.find t.grids "dinv"
let dof t = t.n * t.n * t.n

let cell_center t p =
  let c i = (float_of_int i -. 0.5) *. t.h in
  (c p.(0), c p.(1), c p.(2))

let iter_interior t fn =
  for i = 1 to t.n do
    for j = 1 to t.n do
      for k = 1 to t.n do
        fn [| i; j; k |]
      done
    done
  done

let fill_interior mesh t fn =
  iter_interior t (fun p ->
      let x, y, z = cell_center t p in
      Mesh.set mesh p (fn x y z))

let set_beta t beta =
  (* beta_a at cell (i,j,k) sits on the low face of the cell along axis a:
     that face's centre has coordinate (i-1)h along a and cell-centre
     coordinates along the other axes. *)
  let fill axis name =
    let m = Grids.find t.grids name in
    Mesh.fill_with m (fun p ->
        let coord a =
          if a = axis then float_of_int (p.(a) - 1) *. t.h
          else (float_of_int p.(a) -. 0.5) *. t.h
        in
        beta (coord 0) (coord 1) (coord 2))
  in
  fill 0 "beta_x";
  fill 1 "beta_y";
  fill 2 "beta_z"

let interior_norm_l2 t mesh =
  let acc = ref 0. in
  iter_interior t (fun p ->
      let v = Mesh.get mesh p in
      acc := !acc +. (v *. v));
  sqrt !acc

let interior_norm_linf t mesh =
  let acc = ref 0. in
  iter_interior t (fun p -> acc := Float.max !acc (Float.abs (Mesh.get mesh p)));
  !acc

let error_vs t mesh exact =
  let acc = ref 0. in
  iter_interior t (fun p ->
      let x, y, z = cell_center t p in
      acc := Float.max !acc (Float.abs (Mesh.get mesh p -. exact x y z)));
  !acc
