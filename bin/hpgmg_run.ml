(* CLI driver for the Snowflake-built HPGMG solver.

   Mirrors the shape of the HPGMG benchmark driver: choose a problem size,
   a backend, a number of V-cycles, and get per-cycle residuals plus the
   DOF/s figure of merit. *)

open Cmdliner
open Sf_backends
open Sf_hpgmg
module Trace = Sf_trace.Trace

(* --pipeline R: a self-contained demo of the certified streaming
   distribution.  Decomposes a 1-D domain over R simulated ranks, certifies
   the GSRB exchange/compute group as a streaming pipeline (SF030..SF034),
   prints the certificate, then runs the pipelined executor and checks the
   gathered result bitwise against the bulk-synchronous Spmd path. *)
let run_pipeline_demo ~ranks ~n ~cycles ~workers =
  let module Spmd = Sf_distributed.Spmd in
  let module Pipeline = Sf_distributed.Pipeline in
  if ranks < 2 then begin
    Printf.eprintf "hpgmg_run: --pipeline needs at least 2 ranks\n";
    exit 2
  end;
  let local_n = max 2 (n / ranks) in
  let local_n = if local_n mod 2 = 0 then local_n else local_n + 1 in
  let config = Config.with_workers workers Config.default in
  let mk () =
    let spmd = Spmd.create ~rank_grid:[ ranks ] ~local_n in
    Spmd.init_dinv spmd;
    Spmd.fill_interior spmd ~base:"u" (fun x -> sin (3.0 *. x.(0)));
    Spmd.fill_interior spmd ~base:"f" (fun x -> cos (2.0 *. x.(0)));
    spmd
  in
  let spmd = mk () in
  let group = Spmd.gsrb_smooth_group spmd in
  let cert, diags = Pipeline.certify ~config spmd group in
  List.iter
    (fun d -> print_endline (Sf_analysis.Diagnostics.to_string d))
    diags;
  (match cert with
  | None ->
      prerr_endline "hpgmg_run: pipeline certification failed";
      exit 1
  | Some c ->
      print_endline (Sf_analysis.Pipeline_check.describe c));
  let pipe = Pipeline.create ~config spmd group in
  let t0 = Unix.gettimeofday () in
  Pipeline.run ~sweeps:cycles pipe;
  let dt = Unix.gettimeofday () -. t0 in
  (* bulk-synchronous oracle on an identically initialised decomposition *)
  let oracle = mk () in
  for _ = 1 to cycles do
    Spmd.run_group oracle (Spmd.gsrb_smooth_group oracle)
  done;
  let a = Spmd.gather spmd ~base:"u" and b = Spmd.gather oracle ~base:"u" in
  let same = ref true in
  Sf_mesh.Mesh.iteri a (fun p v ->
      if not (Float.equal v (Sf_mesh.Mesh.get b p)) then same := false);
  Printf.printf
    "pipeline: %d ranks x %d cells, %d sweeps in %.3f s — %s bulk-sync\n"
    ranks local_n cycles dt
    (if !same then "bitwise identical to" else "DIVERGES from");
  exit (if !same then 0 else 1)

let run n cycles backend_name workers variable fcycle interp_linear profile
    trace_file faults guard autotune no_fusion time_tile pipeline =
  (match pipeline with
  | Some ranks -> run_pipeline_demo ~ranks ~n ~cycles ~workers
  | None -> ());
  let backend =
    match Jit.backend_of_string backend_name with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown backend %S (interp|compiled|openmp|opencl)\n"
          backend_name;
        exit 2
  in
  (* --faults/--guard mirror the SF_FAULTS/SF_GUARD environment switches;
     the flag wins when both are given. *)
  (match faults with
  | None -> ()
  | Some spec -> (
      match Sf_resilience.Fault.arm_string spec with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "hpgmg_run: bad --faults spec: %s\n" msg;
          exit 2));
  (match guard with
  | None -> ()
  | Some "sample" -> Sf_resilience.Guard.set_mode Sf_resilience.Guard.Sample
  | Some "full" -> Sf_resilience.Guard.set_mode Sf_resilience.Guard.Full
  | Some "off" -> Sf_resilience.Guard.set_mode Sf_resilience.Guard.Off
  | Some other ->
      Printf.eprintf "hpgmg_run: unknown --guard mode %S (sample|full|off)\n"
        other;
      exit 2);
  (* Both sinks ride the same substrate: --profile wants the roofline-joined
     summary table, --trace wants the Chrome timeline.  Enable tracing and
     measure STREAM bandwidth *before* any kernel runs, so every kernel span
     carries its %-of-peak annotation. *)
  if profile || trace_file <> None then begin
    Trace.set_enabled true;
    let bw = Sf_roofline.Stream.measure () in
    Trace.set_bandwidth_gbs bw;
    Printf.printf "STREAM bandwidth: %.2f GB/s (roofline reference)\n%!" bw
  end;
  (* from the CLI, fusion defaults ON (--no-fusion restores singleton
     waves); library callers still get the conservative SF_FUSION default *)
  let jit_base =
    {
      (Config.with_workers workers Config.default) with
      Config.trace = profile || trace_file <> None || Config.default_trace;
      fusion = not no_fusion;
      time_tile = (if time_tile > 0 then time_tile else Config.default.Config.time_tile);
    }
  in
  (* --autotune: tune the GSRB smoother stack (the solver's hot loop) on a
     scratch finest level, then solve under the winning plan.  A repeat run
     on the same machine/backend/worker count replays the persisted plan
     without measuring anything (visible as a tuning-db hit in --profile). *)
  let jit =
    if not autotune then jit_base
    else begin
      let level = Level.create ~n in
      let shape = level.Level.shape in
      let reps = Mg.default_config.Mg.smooths in
      let group = Operators.gsrb_smooth in
      let measure cfg =
        let p = Autotune.plan_of_config cfg in
        let kernel =
          if p.Autotune.time_tile > 1 then
            Jit.compile_time_tiled ~config:cfg ~reps backend ~shape group
          else Jit.compile ~config:cfg backend ~shape group
        in
        let apps = if p.Autotune.time_tile > 1 then 1 else reps in
        let once () =
          for _ = 1 to apps do
            kernel.Kernel.run ~params:(Level.params level) level.Level.grids
          done
        in
        once ();
        (* warm: JIT + pool spin-up *)
        let best = ref infinity in
        for _ = 1 to 3 do
          let t0 = Unix.gettimeofday () in
          once ();
          best := Float.min !best (Unix.gettimeofday () -. t0)
        done;
        !best
      in
      let r = Autotune.tune ~config:jit_base ~backend ~shape ~reps ~measure group in
      Printf.printf "autotune: %s (%s%s)\n%!"
        (Autotune.describe r.Autotune.plan)
        (Autotune.source_to_string r.Autotune.source)
        (match r.Autotune.measured_s with
        | Some m -> Printf.sprintf ", %.3g s measured" m
        | None -> Printf.sprintf ", %.3g s predicted" r.Autotune.predicted_s);
      r.Autotune.config
    end
  in
  let config =
    {
      Mg.default_config with
      backend;
      jit;
      interp = (if interp_linear then Mg.Linear else Mg.Constant);
    }
  in
  let solver = Mg.create ~config ~n () in
  if variable then begin
    Mg.set_beta solver Problem.beta_smooth;
    Problem.setup_variable ~seed:42 (Mg.finest solver);
    Mg.set_beta solver Problem.beta_smooth
  end
  else Problem.setup_poisson (Mg.finest solver);
  Printf.printf
    "HPGMG (Snowflake/OCaml): n=%d (%d levels, %d DOF), backend=%s, \
     workers=%d, %s coefficients, %s interpolation\n%!"
    n
    (Array.length solver.Mg.levels)
    (Mg.dof solver) (Jit.backend_name backend) workers
    (if variable then "variable" else "constant")
    (if interp_linear then "trilinear" else "piecewise-constant");
  let t0 = Unix.gettimeofday () in
  if fcycle then begin
    Mg.fcycle solver;
    Printf.printf "F-cycle residual: %.6e\n" (Mg.residual_norm solver)
  end;
  let supervised =
    Sf_resilience.Fault.armed () || Sf_resilience.Guard.active ()
  in
  let norms =
    if supervised then Mg.solve_resilient ~cycles solver
    else Mg.solve ~cycles solver
  in
  let dt = Unix.gettimeofday () -. t0 in
  if supervised && Jit.backend_name (Mg.active_backend solver)
                   <> Jit.backend_name backend
  then
    Printf.printf "backend failover: %s -> %s\n"
      (Jit.backend_name backend)
      (Jit.backend_name (Mg.active_backend solver));
  Array.iteri
    (fun i r ->
      if i = 0 then Printf.printf "initial residual: %.6e\n" r
      else
        Printf.printf "v-cycle %2d: residual %.6e  (reduction %.3f)\n" i r
          (r /. norms.(i - 1)))
    norms;
  Printf.printf "solve time: %.3f s  (%.0f DOF/s over %d cycles)\n" dt
    (float_of_int (Mg.dof solver) /. (dt /. float_of_int cycles))
    cycles;
  if not variable then begin
    let err =
      Level.error_vs (Mg.finest solver)
        (Level.u (Mg.finest solver))
        Problem.exact_sine
    in
    Printf.printf "discretisation error vs exact solution: %.3e (O(h^2) = %.3e)\n"
      err
      (1. /. float_of_int (n * n))
  end;
  if profile then begin
    Printf.printf "\nsmoother plan: %s\n" (Mg.smoother_plan solver);
    print_endline "\ntrace summary (roofline-joined):";
    Sf_trace.Report.print_summary ()
  end;
  match trace_file with
  | Some path ->
      Trace.write_chrome_json path;
      Printf.printf "wrote Chrome trace (%d events) to %s\n"
        (List.length (Trace.events ()))
        path
  | None -> ()

let n_arg =
  Arg.(value & opt int 32 & info [ "n"; "size" ] ~doc:"Finest interior size per axis (coarsest * 2^k).")

let cycles_arg =
  Arg.(value & opt int 10 & info [ "cycles" ] ~doc:"Number of V-cycles (paper uses 10).")

let backend_arg =
  Arg.(value & opt string "compiled" & info [ "backend" ] ~doc:"interp | compiled | openmp | opencl")

let workers_arg =
  Arg.(
    value
    & opt int Config.default_workers
    & info [ "workers" ] ~doc:"Parallel degree for the pool-backed backends (default $(b,SF_WORKERS)).")

let variable_arg =
  Arg.(value & flag & info [ "variable" ] ~doc:"Variable-coefficient problem (beta from Problem.beta_smooth).")

let fcycle_arg =
  Arg.(value & flag & info [ "fcycle" ] ~doc:"Run one full-multigrid F-cycle before the V-cycles.")

let linear_arg =
  Arg.(value & flag & info [ "linear-interp" ] ~doc:"Use trilinear interpolation instead of piecewise-constant.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ] ~doc:"Print the per-level, per-operation timing breakdown.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the solve to $(docv) \
           (load in chrome://tracing or Perfetto).")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Arm a fault-injection campaign (same grammar as $(b,SF_FAULTS); \
           the flag wins when both are set): comma-separated \
           $(i,site:kind) clauses with optional $(i,@p=)/$(i,@n=)/\
           $(i,@count=)/$(i,@seed=)/$(i,@match=) modifiers, e.g. \
           $(b,kernel:raise\\@match=openmp,wave:transient\\@n=2).  An armed \
           campaign also switches the solve to the supervised path \
           (retry, backend failover, checkpoint/rollback); see \
           docs/RESILIENCE.md.")

let guard_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "guard" ] ~docv:"MODE"
        ~doc:
          "Force the post-run NaN/Inf guard mode (mirrors $(b,SF_GUARD)): \
           $(b,sample) scans ~1024 strided points per output grid, \
           $(b,full) scans every point, $(b,off) disables scanning even \
           under an armed fault campaign.")

let autotune_arg =
  Arg.(
    value & flag
    & info [ "autotune" ]
        ~doc:
          "Tune the smoother plan (fusion $(i,x) tile $(i,x) temporal depth) \
           before solving: candidates are ranked by the analytic roofline \
           model, the best few confirmed by timed runs, and the winner \
           persisted in the tuning DB ($(b,SF_TUNE_DB) or \
           ~/.cache/snowflake/tuning.json) so repeat runs replay it without \
           re-measuring.")

let no_fusion_arg =
  Arg.(
    value & flag
    & info [ "no-fusion" ]
        ~doc:
          "Disable cross-wave fusion (from the CLI, cofusible stencils are \
           fused into single sweeps by default).")

let time_tile_arg =
  Arg.(
    value & opt int 0
    & info [ "time-tile" ] ~docv:"K"
        ~doc:
          "Temporal-block the smoother: K consecutive smoother applications \
           run as one skewed time-tiled kernel (~one memory pass per K \
           sweeps, bitwise identical results).  0 leaves the default.")

let pipeline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pipeline" ] ~docv:"RANKS"
        ~doc:
          "Demo the certified streaming distribution instead of the solve: \
           decompose a 1-D GSRB smoother over $(docv) simulated ranks, \
           certify it as a streaming pipeline (bounded channel depths + \
           deadlock-freedom proof, codes SF030..SF034), run --cycles \
           pipelined sweeps, and check the result bitwise against the \
           bulk-synchronous exchange.")

let cmd =
  let doc = "Snowflake-built geometric multigrid (HPGMG reproduction)" in
  Cmd.v
    (Cmd.info "hpgmg_run" ~doc)
    Term.(
      const run $ n_arg $ cycles_arg $ backend_arg $ workers_arg
      $ variable_arg $ fcycle_arg $ linear_arg $ profile_arg $ trace_arg
      $ faults_arg $ guard_arg $ autotune_arg $ no_fusion_arg $ time_tile_arg
      $ pipeline_arg)

let () = exit (Cmd.eval cmd)
