(* Standalone stencil benchmark CLI: time any of the paper's three
   operators on any backend at any size — the building block behind
   Figures 7 and 8, exposed for interactive exploration. *)

open Cmdliner
open Sf_backends
open Sf_hpgmg
open Sf_roofline

let operators =
  [
    ( "cc7pt",
      Snowflake.Group.make ~label:"cc_7pt"
        (Operators.boundaries ~grid:"u"
        @ [ Operators.laplacian_7pt ~out:"res" ~input:"u" ]),
      Bound.bytes_cc_7pt );
    ("jacobi", Operators.jacobi_smooth, Bound.bytes_cc_jacobi);
    ("gsrb", Operators.gsrb_smooth, Bound.bytes_vc_gsrb);
  ]

let run op_name n backend_name workers repeats tile autotune trace_file =
  let _, group, bytes =
    match List.find_opt (fun (nm, _, _) -> nm = op_name) operators with
    | Some x -> x
    | None ->
        Printf.eprintf "unknown operator %S (cc7pt|jacobi|gsrb)\n" op_name;
        exit 2
  in
  let backend =
    match Jit.backend_of_string backend_name with
    | Some b -> b
    | None ->
        Printf.eprintf "unknown backend %S\n" backend_name;
        exit 2
  in
  let config =
    {
      Config.default with
      workers;
      tile = (if tile = [] then None else Some tile);
    }
  in
  let level = Level.create ~n in
  Level.set_beta level Problem.beta_smooth;
  Level.fill_interior (Level.u level) level (fun x y z ->
      sin (3. *. x) *. cos (2. *. (y -. z)));
  Level.fill_interior (Level.f level) level Problem.rhs_sine;
  Baseline.init_dinv level;
  (* bandwidth must be known before any traced kernel runs so the spans
     carry their %-of-roofline-peak annotation *)
  let bw = Stream.measure ~n:1_000_000 ~trials:3 () in
  if trace_file <> None then begin
    Sf_trace.Trace.set_enabled true;
    Sf_trace.Trace.set_bandwidth_gbs bw
  end;
  let kernel = Jit.compile ~config backend ~shape:level.Level.shape group in
  let dt =
    Sf_harness.Timer.time ~label:("bench:" ^ op_name) ~warmup:1 ~repeats
      (fun () ->
        kernel.Kernel.run ~params:(Level.params level) level.Level.grids)
  in
  let points = float_of_int (n * n * n) in
  let host = Machine.host ~bandwidth_gbs:bw () in
  Printf.printf "%s @ %d^3 on %s (workers=%d): %.4f s  = %.2f Mstencil/s\n"
    op_name n (Jit.backend_name backend) workers dt (points /. dt /. 1e6);
  Printf.printf "roofline bound at measured %.2f GB/s and %g B/stencil: %.2f Mstencil/s\n"
    bw bytes
    (Bound.stencils_per_second ~machine:host ~bytes_per_stencil:bytes /. 1e6);
  Printf.printf "kernel plan: %s\n" kernel.Kernel.description;
  if autotune then begin
    let result =
      Sf_harness.Tune.best ~repeats ~backend ~shape:level.Level.shape
        ~params:(Level.params level) ~grids:level.Level.grids group
    in
    let tuned = result.Sf_harness.Tune.config in
    Printf.printf
      "autotuned: %.4f s with tile=%s multicolor=%b (vs %.4f s untuned)\n"
      result.Sf_harness.Tune.time
      (match tuned.Config.tile with
      | None -> "outer-chunks"
      | Some t -> String.concat "x" (List.map string_of_int t))
      tuned.Config.multicolor dt
  end;
  match trace_file with
  | Some path ->
      Sf_trace.Trace.write_chrome_json path;
      Printf.printf "wrote Chrome trace (%d events) to %s\n"
        (List.length (Sf_trace.Trace.events ()))
        path
  | None -> ()

let op_arg =
  Arg.(value & pos 0 string "gsrb" & info [] ~docv:"OPERATOR" ~doc:"cc7pt | jacobi | gsrb")

let n_arg = Arg.(value & opt int 32 & info [ "n"; "size" ] ~doc:"Interior size per axis.")
let backend_arg = Arg.(value & opt string "openmp" & info [ "backend" ] ~doc:"Backend name.")
let workers_arg =
  Arg.(
    value
    & opt int Config.default_workers
    & info [ "workers" ] ~doc:"Pool degree (default $(b,SF_WORKERS)).")
let repeats_arg = Arg.(value & opt int 3 & info [ "repeats" ] ~doc:"Timing repeats (best-of).")

let tile_arg =
  Arg.(value & opt (list int) [] & info [ "tile" ] ~doc:"Explicit tile sizes, e.g. 8,8,64.")

let autotune_arg =
  Arg.(value & flag & info [ "autotune" ] ~doc:"Search tile/multicolor candidates and report the best.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace_event JSON timeline to $(docv).")

let cmd =
  Cmd.v
    (Cmd.info "stencil_bench" ~doc:"Time one stencil operator on one backend")
    Term.(
      const run $ op_arg $ n_arg $ backend_arg $ workers_arg $ repeats_arg
      $ tile_arg $ autotune_arg $ trace_arg)

let () = exit (Cmd.eval cmd)
