(* sflint: the whole-program static analyzer and schedule certifier.

   Loads stencil programs (s-expression form, docs/LANGUAGE.md), runs every
   analysis pass over them — per-stencil validation (SF001-SF004), the
   dataflow passes (SF011 uninitialized read, SF012 dead store),
   backend-plan certification (SF021-SF025) and, on request, the
   streaming-pipeline certifier (SF030-SF034, --pipeline) — and prints the
   findings as compiler-style text or as JSON.  Findings replicated across
   SPMD ranks are collapsed to one diagnostic with a rank-count suffix.
   Exit status: 0 clean (warnings/notes allowed), 1 when any
   error-severity diagnostic fired, 2 on usage or parse errors.
   docs/LINTING.md catalogues the codes; `--explain SFxxx` prints one
   entry with its fix hint. *)

open Cmdliner
open Sf_util

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let comma_list s =
  List.filter (fun x -> x <> "") (String.split_on_char ',' (String.trim s))

let print_codes () =
  List.iter
    (fun (code, sev, doc) ->
      Printf.printf "%s  %-7s  %s\n" code
        (Sf_analysis.Diagnostics.severity_to_string sev)
        doc)
    Sf_analysis.Diagnostics.catalogue

let print_explain code =
  let code = String.uppercase_ascii (String.trim code) in
  match Sf_analysis.Diagnostics.explain code with
  | Some (sev, doc, hint) ->
      Printf.printf "%s (%s): %s\n  fix: %s\n" code
        (Sf_analysis.Diagnostics.severity_to_string sev)
        doc hint;
      exit 0
  | None ->
      Printf.eprintf
        "sflint: unknown diagnostic code %S (--codes lists the catalogue)\n"
        code;
      exit 2

(* grid extents follow the codegen_dump convention: iteration shape is
   (n+2)^dims, and grids named fine_* (multigrid restriction sources) are
   twice the interior plus ghosts *)
let shapes_for ~dims ~n =
  let shape = Ivec.of_list (List.init dims (fun _ -> n + 2)) in
  let grid_shape name =
    if String.length name >= 5 && String.sub name 0 5 = "fine_" then
      Ivec.of_list (List.init dims (fun _ -> (2 * n) + 2))
    else shape
  in
  (shape, grid_shape)

let lint_file ~n ~params ~inputs ~backends ~config ~pipeline ~pipe_depth
    ~time_tile ~time_skew path =
  match Snowflake.Program_io.group_of_string (read_file path) with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok group ->
      let dims = Snowflake.Group.dims group in
      let shape, grid_shape = shapes_for ~dims ~n in
      let static =
        Sf_analysis.Lint.program ~shape ~grid_shape ?params ?inputs group
      in
      let certified =
        List.concat_map
          (fun backend ->
            Sf_backends.Schedule_check.certify config ~shape ~backend group)
          backends
      in
      (* streaming-pipeline certification (SF030-SF034); a group without
         rank-qualified grids yields no pipeline findings *)
      let piped =
        if not (pipeline || pipe_depth <> None) then []
        else
          snd
            (Sf_analysis.Pipeline_check.analyze ?depth_override:pipe_depth
               ~budget_bytes:config.Sf_backends.Config.pipe_budget ~shape
               group)
      in
      (* temporal-blocking certification (SF024/SF025) for an explicit
         --time-tile depth, with --time-skew overriding the computed skew *)
      let tiled =
        match time_tile with
        | None -> []
        | Some reps -> (
            match
              Sf_backends.Timetile.plan ?skew:time_skew config ~shape ~reps
                group
            with
            | Some plan ->
                Sf_backends.Schedule_check.certify_timetile_plan config ~shape
                  plan
            | None ->
                Sf_backends.Schedule_check.certify_timetile config ~shape
                  group)
      in
      Ok
        (Sf_analysis.Diagnostics.collapse_ranks
           (Sf_analysis.Diagnostics.sort (static @ certified @ piped @ tiled)))

let run files n json params inputs backend workers multicolor codes explain
    pipeline pipe_depth fusion force_parallel time_tile time_skew =
  if codes then begin
    print_codes ();
    exit 0
  end;
  Option.iter print_explain explain;
  if files = [] then begin
    prerr_endline "sflint: no program files given (try --codes or --help)";
    exit 2
  end;
  let params = Option.map comma_list params in
  let inputs = Option.map comma_list inputs in
  let backends =
    match backend with
    | "openmp" -> [ `Openmp ]
    | "opencl" -> [ `Opencl ]
    | "all" -> [ `Openmp; `Opencl ]
    | "none" -> []
    | other ->
        Printf.eprintf "sflint: unknown backend %S (openmp|opencl|all|none)\n"
          other;
        exit 2
  in
  let config =
    {
      (Sf_backends.Config.with_workers workers Sf_backends.Config.default)
      with
      Sf_backends.Config.multicolor;
      fusion;
      force_parallel =
        (match force_parallel with Some s -> comma_list s | None -> []);
    }
  in
  let results =
    List.map
      (fun path ->
        ( path,
          lint_file ~n ~params ~inputs ~backends ~config ~pipeline ~pipe_depth
            ~time_tile ~time_skew path ))
      files
  in
  List.iter
    (fun (path, r) ->
      match r with
      | Error msg ->
          prerr_endline msg;
          exit 2
      | Ok _ -> ignore path)
    results;
  let results =
    List.map
      (function
        | path, Ok ds -> (path, ds) | _, Error _ -> assert false)
      results
  in
  if json then begin
    let file_obj (path, ds) =
      Printf.sprintf "{\"file\":\"%s\",\"diagnostics\":%s}"
        (Sf_analysis.Diagnostics.json_escape path)
        (Sf_analysis.Diagnostics.list_to_json ds)
    in
    Printf.printf "{\"version\":1,\"files\":[%s]}\n"
      (String.concat "," (List.map file_obj results))
  end
  else
    List.iter
      (fun (path, ds) ->
        match ds with
        | [] -> Printf.printf "%s: clean\n" path
        | _ ->
            Printf.printf "%s:\n%s" path (Sf_analysis.Diagnostics.render ds))
      results;
  let any_errors =
    List.exists (fun (_, ds) -> Sf_analysis.Diagnostics.has_errors ds) results
  in
  exit (if any_errors then 1 else 0)

let files_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"FILE" ~doc:"Stencil program file(s) (s-expression form).")

let n_arg =
  Arg.(value & opt int 8 & info [ "n"; "size" ] ~doc:"Interior size per axis (iteration shape is (n+2)^dims).")

let json_arg = Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")

let params_arg =
  Arg.(value & opt (some string) None & info [ "params" ] ~doc:"Comma-separated scalar parameters the caller will bind; enables the SF004 check.")

let inputs_arg =
  Arg.(value & opt (some string) None & info [ "inputs" ] ~doc:"Comma-separated grids initialized before the group runs; makes SF011 an exact error instead of an inferred warning.")

let backend_arg =
  Arg.(value & opt string "all" & info [ "backend" ] ~doc:"Plan(s) to certify: openmp | opencl | all | none.")

let workers_arg =
  Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker count baked into the certified plans.")

let multicolor_arg =
  Arg.(value & flag & info [ "multicolor" ] ~doc:"Certify the multicolor-reordered plan variant.")

let codes_arg =
  Arg.(value & flag & info [ "codes" ] ~doc:"Print the diagnostic-code catalogue and exit.")

let explain_arg =
  Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"SFxxx" ~doc:"Print one catalogue entry (severity, description, fix hint) and exit; unknown codes exit 2.")

let pipeline_arg =
  Arg.(value & flag & info [ "pipeline" ] ~doc:"Run the streaming-pipeline certifier (SF030-SF034) on rank-qualified (SPMD) groups.")

let pipe_depth_arg =
  Arg.(value & opt (some int) None & info [ "pipeline-depth" ] ~docv:"D" ~doc:"Force every channel depth to D before the deadlock proof (implies --pipeline); 0 reproduces the SF031 witness.")

let fusion_arg =
  Arg.(value & flag & info [ "fusion" ] ~doc:"Certify the fused plan variant (SF023 on illegal fusion).")

let force_parallel_arg =
  Arg.(value & opt (some string) None & info [ "force-parallel" ] ~docv:"LABELS" ~doc:"Comma-separated stencil labels asserted parallel against the analysis (SF022; certification is the safety net).")

let time_tile_arg =
  Arg.(value & opt (some int) None & info [ "time-tile" ] ~docv:"K" ~doc:"Certify a temporal-blocking plan of depth K (SF024/SF025).")

let time_skew_arg =
  Arg.(value & opt (some int) None & info [ "time-skew" ] ~docv:"S" ~doc:"Override the time-tile skew (below the dependence slope reproduces SF024).")

let cmd =
  Cmd.v
    (Cmd.info "sflint" ~doc:"Static analyzer and schedule certifier for stencil programs")
    Term.(
      const run $ files_arg $ n_arg $ json_arg $ params_arg $ inputs_arg
      $ backend_arg $ workers_arg $ multicolor_arg $ codes_arg $ explain_arg
      $ pipeline_arg $ pipe_depth_arg $ fusion_arg $ force_parallel_arg
      $ time_tile_arg $ time_skew_arg)

let () = exit (Cmd.eval cmd)
