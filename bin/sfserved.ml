(* sfserved: the long-lived multi-tenant solve daemon.

   Speaks the versioned binary protocol of Sf_serve.Protocol over a
   Unix-domain socket (--socket PATH, thread per connection) or over
   stdin/stdout (--stdio, one connection — inetd style).  The process
   keeps the Jit compile cache and the worker pool warm across requests:
   the first solve of a (group, shape, backend, config) pays the
   lowering, every later one — from any tenant — replays the cached
   kernel, and concurrent identical compiles coalesce into one.

   Per-tenant quotas (--max-inflight/--max-cells/--cell-budget) bound
   each tenant; the bounded queue (--queue) answers BUSY past capacity.
   On shutdown (SHUTDOWN request or SIGINT/SIGTERM) running solves
   finish and deliver, still-queued tickets get a terminal
   "server shutting down" ERROR, the STATS document goes to --stats-json
   if given, and the process exits 0.  docs/SERVING.md documents the
   wire format and the STATS fields. *)

open Cmdliner
module Server = Sf_serve.Server
module Session = Sf_serve.Session

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Listen on a Unix-domain socket at $(docv).")

let stdio_arg =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:"Serve exactly one connection over stdin/stdout, then exit.")

let threads_arg =
  Arg.(
    value & opt int 2
    & info [ "threads" ] ~doc:"Executor threads draining the request queue.")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "workers" ]
        ~doc:"Default pool workers per solve (a SUBMIT may override).")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~doc:"Queued-request ceiling before BUSY backpressure.")

let max_inflight_arg =
  Arg.(
    value & opt int 8
    & info [ "max-inflight" ] ~doc:"Per-tenant concurrent request quota.")

let max_cells_arg =
  Arg.(
    value
    & opt int (16 * 1024 * 1024)
    & info [ "max-cells" ] ~doc:"Per-request cell ceiling (shape x reps).")

let cell_budget_arg =
  Arg.(
    value & opt int 0
    & info [ "cell-budget" ]
        ~doc:"Cumulative per-tenant cell budget; 0 = unmetered.")

let backend_arg =
  Arg.(
    value & opt string "openmp"
    & info [ "backend" ]
        ~doc:"Default backend: interp | compiled | openmp | opencl.")

let no_faults_arg =
  Arg.(
    value & flag
    & info [ "no-faults" ]
        ~doc:"Refuse the faults capability (fault-carrying SUBMITs).")

let no_shutdown_arg =
  Arg.(
    value & flag
    & info [ "no-shutdown" ] ~doc:"Refuse the shutdown capability.")

let stats_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats-json" ] ~docv:"PATH"
        ~doc:"Write the final STATS document to $(docv) at exit.")

let run socket stdio threads workers queue max_inflight max_cells cell_budget
    backend no_faults no_shutdown stats_json =
  let backend =
    match Sf_backends.Jit.backend_of_string backend with
    | Some b -> b
    | None ->
        Printf.eprintf "sfserved: unknown backend %S\n" backend;
        exit 2
  in
  let config =
    {
      Server.threads;
      queue_cap = queue;
      quota =
        {
          Session.max_inflight;
          max_cells;
          cell_budget = (if cell_budget <= 0 then max_int else cell_budget);
        };
      backend;
      workers;
      max_workers = Server.default_config.Server.max_workers;
      max_reps = Server.default_config.Server.max_reps;
      max_program_bytes = 1024 * 1024;
      allow_faults = not no_faults;
      allow_shutdown = not no_shutdown;
    }
  in
  let t = Server.create ~config () in
  let finish () =
    Server.stop t;
    Server.join t;
    (match stats_json with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            output_string oc (Server.stats_json t);
            output_char oc '\n'));
    exit 0
  in
  List.iter
    (fun signal ->
      try Sys.set_signal signal (Sys.Signal_handle (fun _ -> finish ()))
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigint; Sys.sigterm ];
  (match (socket, stdio) with
  | Some path, false -> (
      try Server.listen_unix t ~path
      with Failure m ->
        Printf.eprintf "sfserved: %s\n" m;
        exit 1)
  | None, true -> Server.serve_pair t Unix.stdin Unix.stdout
  | Some _, true ->
      Printf.eprintf "sfserved: --socket and --stdio are exclusive\n";
      exit 2
  | None, false ->
      Printf.eprintf "sfserved: pass --socket PATH or --stdio\n";
      exit 2);
  finish ()

let cmd =
  Cmd.v
    (Cmd.info "sfserved" ~doc:"Long-lived multi-tenant stencil solve server")
    Term.(
      const run $ socket_arg $ stdio_arg $ threads_arg $ workers_arg
      $ queue_arg $ max_inflight_arg $ max_cells_arg $ cell_budget_arg
      $ backend_arg $ no_faults_arg $ no_shutdown_arg $ stats_json_arg)

let () = exit (Cmd.eval cmd)
