(* sfsc: command-line client for sfserved.

   solve    — submit corpus-format .sfl files and wait for the results
   stats    — print the server's STATS JSON document
   shutdown — ask the server to stop
   soak     — a small load generator: N requests from T tenants drawn
              round-robin from a corpus directory, then the latency
              percentiles from STATS (the @serve-smoke soak). *)

open Cmdliner
module Client = Sf_serve.Client
module Protocol = Sf_serve.Protocol
module Json = Sf_trace.Json

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("sfsc: " ^ m); exit 1) fmt

let connect ~tenant path =
  match Client.connect_unix ~tenant path with
  | Ok c -> c
  | Error m -> die "%s" m

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"The sfserved Unix-domain socket.")

let tenant_arg =
  Arg.(
    value & opt string "sfsc"
    & info [ "tenant" ] ~doc:"Tenant name to announce in HELLO.")

let backend_arg =
  Arg.(
    value & opt string ""
    & info [ "backend" ] ~doc:"Backend override (empty = server default).")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~doc:"Worker override (0 = server default).")

let reps_arg =
  Arg.(value & opt int 1 & info [ "reps" ] ~doc:"Applications of the group.")

let files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:".sfl files.")

(* ------------------------------------------------------------------ solve *)

let run_solve socket tenant backend workers reps files =
  let c = connect ~tenant socket in
  let failed = ref 0 in
  List.iter
    (fun file ->
      let submit =
        { Protocol.program = read_file file; backend; workers; reps; fault = "" }
      in
      match Client.solve c submit with
      | Ok (Client.Solved { elapsed_us; grids }) ->
          Printf.printf "%s: ok, %d grid(s), %.0f us\n" file
            (List.length grids) elapsed_us
      | Ok (Client.Failed { code; message }) ->
          incr failed;
          Printf.printf "%s: ERROR %s: %s\n" file code message
      | Error m -> die "%s: transport: %s" file m)
    files;
  Client.close c;
  if !failed > 0 then exit 1

(* ------------------------------------------------------------------ stats *)

let run_stats socket tenant =
  let c = connect ~tenant socket in
  (match Client.stats c with
  | Ok json -> print_endline json
  | Error m -> die "stats: %s" m);
  Client.close c

let run_shutdown socket tenant =
  let c = connect ~tenant socket in
  (match Client.shutdown c with
  | Ok () -> ()
  | Error m -> die "shutdown: %s" m);
  Client.close c

(* ------------------------------------------------------------------- soak *)

let percentile_of_stats json name =
  match Json.of_string json with
  | Error m -> die "soak: STATS did not parse: %s" m
  | Ok doc -> (
      match Json.member "series" doc with
      | Some (Json.Arr series) -> (
          let found =
            List.find_opt
              (fun s ->
                match Json.member "name" s with
                | Some (Json.Str n) -> n = name
                | _ -> false)
              series
          in
          match found with
          | Some s ->
              let f key =
                match Json.member key s with
                | Some (Json.Num v) -> v
                | _ -> nan
              in
              (f "p50_us", f "p99_us", f "n")
          | None -> (nan, nan, 0.))
      | _ -> die "soak: STATS has no series array")

let run_soak socket count tenants dir backend workers reps =
  let files = Sf_fuzz.Corpus.files dir in
  if files = [] then die "soak: no .sfl files under %s" dir;
  let programs = Array.of_list (List.map read_file files) in
  let clients =
    Array.init (max 1 tenants) (fun i ->
        connect ~tenant:(Printf.sprintf "soak-%d" i) socket)
  in
  let failures = ref 0 in
  for i = 0 to count - 1 do
    let c = clients.(i mod Array.length clients) in
    let program = programs.(i mod Array.length programs) in
    match
      Client.solve c { Protocol.program; backend; workers; reps; fault = "" }
    with
    | Ok (Client.Solved _) -> ()
    | Ok (Client.Failed { code; message }) ->
        incr failures;
        Printf.eprintf "soak: request %d failed: %s: %s\n" i code message
    | Error m -> die "soak: transport: %s" m
  done;
  (match Client.stats clients.(0) with
  | Ok json ->
      let p50, p99, n = percentile_of_stats json "serve.request_us" in
      Printf.printf
        "soak: %d requests, %d tenants, %d failures; request latency n=%.0f \
         p50=%.0f us p99=%.0f us\n"
        count (Array.length clients) !failures n p50 p99
  | Error m -> die "soak: stats: %s" m);
  Array.iter Client.close clients;
  if !failures > 0 then exit 1

let count_arg =
  Arg.(value & opt int 200 & info [ "count" ] ~doc:"Requests to send.")

let tenants_arg =
  Arg.(value & opt int 4 & info [ "tenants" ] ~doc:"Concurrent tenant names.")

let dir_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "corpus" ] ~docv:"DIR" ~doc:"Directory of .sfl programs.")

let solve_cmd =
  Cmd.v
    (Cmd.info "solve" ~doc:"Submit .sfl programs and wait for results")
    Term.(
      const run_solve $ socket_arg $ tenant_arg $ backend_arg $ workers_arg
      $ reps_arg $ files_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the server STATS document")
    Term.(const run_stats $ socket_arg $ tenant_arg)

let shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown" ~doc:"Stop the server")
    Term.(const run_shutdown $ socket_arg $ tenant_arg)

let soak_cmd =
  Cmd.v
    (Cmd.info "soak" ~doc:"Replay a corpus as load; print latency percentiles")
    Term.(
      const run_soak $ socket_arg $ count_arg $ tenants_arg $ dir_arg
      $ backend_arg $ workers_arg $ reps_arg)

let cmd =
  Cmd.group
    (Cmd.info "sfsc" ~doc:"Client for the sfserved solve server")
    [ solve_cmd; stats_cmd; shutdown_cmd; soak_cmd ]

let () = exit (Cmd.eval cmd)
