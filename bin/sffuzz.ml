(* sffuzz: differential fuzzing and metamorphic testing for the stencil
   backends.

   Generates seeded random well-formed stencil programs, runs each on the
   interpreter (semantic oracle) and on every registered backend
   configuration, and reports any divergence beyond ULP tolerance.  On a
   failure the program is greedily shrunk and (with --corpus-dir) written
   out as a replayable .sfl counterexample.  Metamorphic oracles check
   pool determinism, plan-certification cleanliness and SF011/NaN
   agreement alongside the differential loop.  --replay-dir re-runs a
   saved corpus instead of generating.  Exit status: 0 clean, 1 when any
   divergence/oracle/replay failure, 2 on usage errors.

   --proto switches target: instead of differentiating backends, fuzz
   the sfserved wire protocol (Sf_proto_fuzz) — mutated frames against
   the pure decoders and a live in-process server, plus stateful
   multi-tenant sessions.  Same exit contract; failures shrink to
   replayable .pfz cases (--corpus-dir / --replay-dir). *)

open Cmdliner

let comma_list s =
  List.filter (fun x -> x <> "") (String.split_on_char ',' (String.trim s))

let log quiet msg = if not quiet then Printf.printf "sffuzz: %s\n%!" msg

(* A wedged server connection would otherwise hang the whole campaign;
   the watchdog turns that into a loud bounded failure (the same idiom
   the @serve tests use). *)
let arm_watchdog seconds =
  ignore
    (Thread.create
       (fun () ->
         Thread.delay (float_of_int seconds);
         prerr_endline "sffuzz: --proto watchdog expired (campaign wedged)";
         exit 1)
       ())

let run_proto ~seed ~count ~sessions ~steps ~corpus_dir ~replay_dir ~watchdog
    ~log =
  arm_watchdog watchdog;
  match replay_dir with
  | Some dir ->
      let files = Sf_proto_fuzz.Proto_fuzz.files dir in
      if files = [] then begin
        log (Printf.sprintf "no .pfz corpus files under %s" dir);
        exit 0
      end;
      let failed = Sf_proto_fuzz.Proto_fuzz.replay_paths ~log files in
      List.iter
        (fun (path, e) -> Printf.printf "FAILURE (%s): %s\n%!" path e)
        failed;
      log
        (Printf.sprintf "replayed %d protocol corpus file(s), %d failure(s)"
           (List.length files) (List.length failed));
      exit (if failed = [] then 0 else 1)
  | None ->
      let opts =
        { Sf_proto_fuzz.Proto_fuzz.seed; count; sessions; steps; corpus_dir;
          log }
      in
      let report = Sf_proto_fuzz.Proto_fuzz.run opts in
      List.iter
        (fun (f : Sf_proto_fuzz.Proto_fuzz.failure) ->
          Printf.printf "FAILURE (%s): %s%s\n%!" f.what f.detail
            (match f.corpus_file with
            | Some p -> Printf.sprintf " [saved %s]" p
            | None -> ""))
        report.Sf_proto_fuzz.Proto_fuzz.failures;
      exit (Sf_proto_fuzz.Proto_fuzz.report_exit_code report)

let run seed count max_dims backend ulps atol shrink max_shrink_evals
    corpus_dir oracles inject replay_dir proto sessions steps watchdog quiet =
  if proto then
    run_proto ~seed ~count ~sessions ~steps ~corpus_dir ~replay_dir ~watchdog
      ~log:(log quiet);
  let only =
    match backend with
    | "all" -> None
    | s -> (
        let names = comma_list s in
        let known = [ "compiled"; "openmp"; "opencl" ] in
        match List.filter (fun n -> not (List.mem n known)) names with
        | [] -> Some names
        | bad ->
            Printf.eprintf
              "sffuzz: unknown backend %s (compiled|openmp|opencl|all, \
               comma-separable)\n"
              (String.concat "," bad);
            exit 2)
  in
  let log = log quiet in
  (* undersize-channel is not a miscompiled backend but a runtime-state
     fault against the pipelined-SPMD executor: shrink a certified ring
     behind the certificate's back and require the SF034 depth gate to
     refuse the run.  Self-contained, so it short-circuits the campaign. *)
  (match inject with
  | Some "undersize-channel" -> (
      match Sf_fuzz.Oracle.pipeline_undersize_detected () with
      | Ok () ->
          log "undersize-channel fault refused by the SF034 depth gate";
          exit 0
      | Error msg ->
          Printf.printf "FAILURE: %s\n%!" msg;
          exit 1)
  | _ -> ());
  let inject =
    match inject with
    | None -> None
    | Some "drop-last-stencil" -> Some Sf_fuzz.Diff.Drop_last_stencil
    | Some "perturb-first-cell" -> Some Sf_fuzz.Diff.Perturb_first_cell
    | Some "kernel-raise" -> Some Sf_fuzz.Diff.Kernel_raise
    | Some "nan-poison" -> Some Sf_fuzz.Diff.Nan_poison_cell
    | Some "mis-skew-tile" -> Some Sf_fuzz.Diff.Mis_skew_tile
    | Some other ->
        Printf.eprintf
          "sffuzz: unknown bug %S \
           (drop-last-stencil|perturb-first-cell|kernel-raise|nan-poison|\
           mis-skew-tile|undersize-channel)\n"
          other;
        exit 2
  in
  match replay_dir with
  | Some dir ->
      let files = Sf_fuzz.Corpus.files dir in
      if files = [] then begin
        log (Printf.sprintf "no corpus files under %s" dir);
        exit 0
      end;
      let failed = Sf_fuzz.Driver.replay_paths ~ulps ~atol ?only ~log files in
      log
        (Printf.sprintf "replayed %d corpus file(s), %d failure(s)"
           (List.length files) (List.length failed));
      exit (if failed = [] then 0 else 1)
  | None ->
      let opts =
        {
          Sf_fuzz.Driver.seed;
          count;
          max_dims;
          ulps;
          atol;
          only;
          shrink;
          max_shrink_evals;
          corpus_dir;
          oracles;
          inject;
          log;
        }
      in
      let report = Sf_fuzz.Driver.run opts in
      (* the pipelined-SPMD differential target is rank-structured, which
         generated specs are not — one certified 2-rank run per campaign *)
      let pipeline_failure =
        if not oracles then None
        else
          match Sf_fuzz.Oracle.pipeline_agreement () with
          | Ok () ->
              log "pipeline vs bulk-sync differential target: bitwise clean";
              None
          | Error msg -> Some msg
      in
      let n_fail =
        List.length report.Sf_fuzz.Driver.failures
        + if pipeline_failure = None then 0 else 1
      in
      log
        (Printf.sprintf "%d program(s) tested, %d failure(s)"
           report.Sf_fuzz.Driver.tested n_fail);
      (match pipeline_failure with
      | Some msg -> Printf.printf "FAILURE (pipeline): %s\n%!" msg
      | None -> ());
      List.iter
        (fun (f : Sf_fuzz.Driver.failure) ->
          Printf.printf "FAILURE (seed %d): %s\n%!" f.Sf_fuzz.Driver.original.Sf_fuzz.Gen.seed
            f.Sf_fuzz.Driver.detail)
        report.Sf_fuzz.Driver.failures;
      exit
        (if pipeline_failure <> None then 1
         else Sf_fuzz.Driver.report_exit_code report)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed; program $(i,i) uses seed + $(i,i).")

let count_arg =
  Arg.(value & opt int 100 & info [ "count" ] ~doc:"Number of programs to generate and check.")

let max_dims_arg =
  Arg.(value & opt int 3 & info [ "max-dims" ] ~doc:"Maximum dimensionality of generated programs (1-3).")

let backend_arg =
  Arg.(value & opt string "all" & info [ "backend" ] ~doc:"Backends to differentiate against interp: compiled | openmp | opencl | all (comma-separable).")

let ulps_arg =
  Arg.(value & opt int 512 & info [ "ulps" ] ~doc:"ULP tolerance for the differential comparison.")

let atol_arg =
  Arg.(value & opt float 1e-11 & info [ "atol" ] ~doc:"Absolute tolerance (values within it compare equal regardless of ULPs).")

let shrink_arg =
  Arg.(value & opt bool true & info [ "shrink" ] ~doc:"Greedily minimise failing programs (--shrink=false to disable).")

let shrink_evals_arg =
  Arg.(value & opt int 400 & info [ "max-shrink-evals" ] ~doc:"Budget of re-executions the shrinker may spend per failure.")

let corpus_arg =
  Arg.(value & opt (some string) None & info [ "corpus-dir" ] ~doc:"Write shrunk counterexamples as replayable .sfl files under $(docv)." ~docv:"DIR")

let oracles_arg =
  Arg.(value & opt bool true & info [ "oracles" ] ~doc:"Run the metamorphic oracles (pool determinism, certification gate, SF011/NaN).")

let inject_arg =
  Arg.(value & opt (some string) None & info [ "inject" ] ~doc:"Add a deliberately buggy backend (or runtime fault) the harness must catch: drop-last-stencil | perturb-first-cell | kernel-raise | nan-poison | mis-skew-tile | undersize-channel.")

let replay_arg =
  Arg.(value & opt (some string) None & info [ "replay-dir" ] ~doc:"Replay every .sfl corpus file under $(docv) instead of generating." ~docv:"DIR")

let proto_arg =
  Arg.(value & flag & info [ "proto" ] ~doc:"Fuzz the sfserved wire protocol instead of the backends: mutated frames against the decoders and a live server, plus stateful multi-tenant sessions.  --count is mutated frames; --corpus-dir/--replay-dir use .pfz cases.")

let sessions_arg =
  Arg.(value & opt int 8 & info [ "sessions" ] ~doc:"(--proto) Number of stateful multi-tenant fuzz sessions.")

let steps_arg =
  Arg.(value & opt int 16 & info [ "session-steps" ] ~doc:"(--proto) Randomized protocol steps per session.")

let watchdog_arg =
  Arg.(value & opt int 240 & info [ "watchdog" ] ~doc:"(--proto) Kill the campaign with exit 1 after $(docv) seconds (a wedged server must be a failure, not a hang)." ~docv:"SECONDS")

let quiet_arg = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress output.")

let cmd =
  Cmd.v
    (Cmd.info "sffuzz"
       ~doc:"Differential fuzzer and metamorphic test harness for the stencil backends")
    Term.(
      const run $ seed_arg $ count_arg $ max_dims_arg $ backend_arg $ ulps_arg
      $ atol_arg $ shrink_arg $ shrink_evals_arg $ corpus_arg $ oracles_arg
      $ inject_arg $ replay_arg $ proto_arg $ sessions_arg $ steps_arg
      $ watchdog_arg $ quiet_arg)

let () = exit (Cmd.eval cmd)
